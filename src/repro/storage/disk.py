"""A persistent append-only-log key-value store.

This is the on-disk backend of the Cassandra stand-in: every ``put`` appends
a length-prefixed record to a log file, an in-memory hash index maps keys to
their latest log offset, and ``compact()`` rewrites the log dropping stale
versions and tombstones — a single-level, miniature LSM design that captures
the write path (sequential appends) and read path (index lookup + one random
read) of a log-structured store.

Batch operations are real primitives here, not loops: ``multi_put`` packs
the whole batch into one buffer and lands it with a single append + flush
(+ one ``fsync`` when the store was opened with ``sync=True``), and
``multi_get`` resolves every key against the offset index up front and reads
the values in one offset-ordered file pass, so a batch costs one sequential
sweep instead of one random seek per key.
"""

from __future__ import annotations

import os
import struct
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.exceptions import StorageError
from repro.obs.metrics import REGISTRY
from repro.storage.kv import KeyValueStore, SortedKeyCache
from repro.storage.memory import StoreStats

_RECORD_HEADER = struct.Struct(">IIB")  # key length, value length, tombstone flag


class AppendLogStore(SortedKeyCache, KeyValueStore):
    """Log-structured persistent store with an in-memory key index.

    Cursor scans lean on :class:`SortedKeyCache` over the offset index, so
    paged readers bisect a cached sorted key list instead of re-sorting the
    keyspace per page.
    """

    def __init__(self, path: str | os.PathLike, sync: bool = False) -> None:
        self._path = Path(path)
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self._index: Dict[bytes, Tuple[int, int]] = {}  # key -> (value offset, length)
        self._sync = sync
        self._file = open(self._path, "a+b")
        self.stats = StoreStats()
        # Same discipline as MemoryStore: weakly held, key kept so close()
        # detaches the entry promptly instead of waiting for GC.
        self._metrics_key = REGISTRY.register("store.disk", self.stats)
        self._rebuild_index()

    # -- recovery -------------------------------------------------------------

    def _rebuild_index(self) -> None:
        """Replay the log to rebuild the key index after a restart."""
        self._index.clear()
        self._invalidate_sorted_keys()
        self._file.seek(0)
        offset = 0
        while True:
            header = self._file.read(_RECORD_HEADER.size)
            if not header:
                break
            if len(header) < _RECORD_HEADER.size:
                # Torn final record (crash mid-write): truncate it away.
                self._file.truncate(offset)
                break
            key_len, value_len, tombstone = _RECORD_HEADER.unpack(header)
            key = self._file.read(key_len)
            value_offset = offset + _RECORD_HEADER.size + key_len
            payload = self._file.read(value_len)
            if len(key) < key_len or len(payload) < value_len:
                self._file.truncate(offset)
                break
            if tombstone:
                self._index.pop(key, None)
            else:
                self._index[key] = (value_offset, value_len)
            offset = value_offset + value_len
        self._file.seek(0, os.SEEK_END)

    # -- KeyValueStore interface -------------------------------------------------

    def _read_at(self, offset: int, length: int, key: bytes) -> bytes:
        """Read one value from the log without touching the op counters."""
        position = self._file.tell()
        try:
            self._file.seek(offset)
            value = self._file.read(length)
        finally:
            self._file.seek(position)
        if len(value) != length:
            raise StorageError(f"truncated value for key {key!r}")
        return value

    def get(self, key: bytes) -> Optional[bytes]:
        self.stats.gets += 1
        entry = self._index.get(key)
        if entry is None:
            return None
        return self._read_at(entry[0], entry[1], key)

    def put(self, key: bytes, value: bytes) -> None:
        record = _RECORD_HEADER.pack(len(key), len(value), 0) + key + value
        end = self._append_blob(record)
        if key not in self._index:
            self._invalidate_sorted_keys()
        self._index[key] = (end - len(value), len(value))
        self.stats.puts += 1

    def delete(self, key: bytes) -> bool:
        existed = key in self._index
        if existed:
            self._append_blob(_RECORD_HEADER.pack(len(key), 0, 1) + key)
            self._index.pop(key, None)
            self._invalidate_sorted_keys()
        self.stats.deletes += 1
        return existed

    def scan_prefix(self, prefix: bytes) -> Iterator[Tuple[bytes, bytes]]:
        self.stats.scans += 1
        for key in sorted(self._index):
            if key.startswith(prefix):
                entry = self._index.get(key)
                if entry is not None:
                    yield key, self._read_at(entry[0], entry[1], key)

    def _live_keys(self) -> Iterable[bytes]:
        return self._index

    def scan_from(self, prefix: bytes, after: Optional[bytes] = None) -> Iterator[Tuple[bytes, bytes]]:
        """Cursor-resumed scan: only values at or past the cursor are read from disk."""
        self.stats.scans += 1
        for key in self._keys_from(prefix, after):
            entry = self._index.get(key)
            if entry is not None:
                yield key, self._read_at(entry[0], entry[1], key)

    def scan_keys(self, prefix: bytes) -> Iterator[bytes]:
        """Keys straight from the in-memory index — no log reads at all."""
        self.stats.scans += 1
        return self._keys_from(prefix, None)

    def scan_key_sizes(self, prefix: bytes) -> Iterator[Tuple[bytes, int]]:
        """Sizes from the index's ``(offset, length)`` entries — no log reads."""
        self.stats.scans += 1
        return (
            (key, len(key) + entry[1])
            for key in self._keys_from(prefix, None)
            if (entry := self._index.get(key)) is not None
        )

    def scan_sizes_from(self, prefix: bytes, after: Optional[bytes] = None) -> Iterator[Tuple[bytes, int]]:
        """Keys-only page source: value lengths from the index, log untouched."""
        self.stats.scans += 1
        return (
            (key, entry[1])
            for key in self._keys_from(prefix, after)
            if (entry := self._index.get(key)) is not None
        )

    def size_bytes(self) -> int:
        return sum(len(key) + length for key, (_offset, length) in self._index.items())

    def __len__(self) -> int:
        return len(self._index)

    # -- batch primitives ---------------------------------------------------------

    def multi_put(self, items: Iterable[Tuple[bytes, bytes]]) -> None:
        """Append the whole batch as one buffered write + flush (+ one fsync)."""
        materialized = list(items)
        if not materialized:
            return
        chunks: List[bytes] = []
        spans: List[Tuple[bytes, int, int]] = []  # key, offset within batch, length
        cursor = 0
        for key, value in materialized:
            chunks.append(_RECORD_HEADER.pack(len(key), len(value), 0) + key + value)
            spans.append((key, cursor + _RECORD_HEADER.size + len(key), len(value)))
            cursor += len(chunks[-1])
        blob = b"".join(chunks)
        end = self._append_blob(blob)
        base = end - len(blob)
        for key, relative_offset, length in spans:
            self._index[key] = (base + relative_offset, length)
        self._invalidate_sorted_keys()
        self.stats.multi_puts += 1
        self.stats.multi_put_keys += len(materialized)

    def multi_get(self, keys: Iterable[bytes]) -> Dict[bytes, Optional[bytes]]:
        """Resolve offsets up front, then read values in one offset-ordered pass."""
        materialized = list(keys)
        if not materialized:
            return {}
        result: Dict[bytes, Optional[bytes]] = {key: None for key in materialized}
        located = sorted(
            (entry[0], entry[1], key)
            for key, entry in ((key, self._index.get(key)) for key in set(materialized))
            if entry is not None
        )
        position = self._file.tell()
        try:
            # One forward sweep through the sorted offsets; the file position
            # is saved/restored once for the whole batch, not per key.
            for offset, length, key in located:
                self._file.seek(offset)
                value = self._file.read(length)
                if len(value) != length:
                    raise StorageError(f"truncated value for key {key!r}")
                result[key] = value
        finally:
            self._file.seek(position)
        self.stats.multi_gets += 1
        self.stats.multi_get_keys += len(result)
        return result

    def multi_delete(self, keys: Iterable[bytes]) -> Set[bytes]:
        """Append all tombstones as one buffered write + flush (+ one fsync)."""
        materialized = list(keys)
        if not materialized:
            return set()
        existing = {key for key in materialized if key in self._index}
        if existing:
            blob = b"".join(_RECORD_HEADER.pack(len(key), 0, 1) + key for key in sorted(existing))
            self._append_blob(blob)
            for key in existing:
                self._index.pop(key, None)
            self._invalidate_sorted_keys()
        self.stats.multi_deletes += 1
        self.stats.multi_delete_keys += len(materialized)
        return existing

    # -- maintenance ----------------------------------------------------------------

    def _append_blob(self, blob: bytes) -> int:
        """Append raw bytes, flush once, and return the end-of-file offset."""
        self._file.seek(0, os.SEEK_END)
        self._file.write(blob)
        self._file.flush()
        if self._sync:
            os.fsync(self._file.fileno())
        return self._file.tell()

    def compact(self) -> None:
        """Rewrite the log keeping only the live version of each key."""
        compact_path = self._path.with_suffix(self._path.suffix + ".compact")
        live = [
            (key, self._read_at(entry[0], entry[1], key))
            for key, entry in sorted(self._index.items())
        ]
        with open(compact_path, "wb") as target:
            new_index: Dict[bytes, Tuple[int, int]] = {}
            offset = 0
            for key, value in live:
                record = _RECORD_HEADER.pack(len(key), len(value), 0) + key + value
                target.write(record)
                new_index[key] = (offset + _RECORD_HEADER.size + len(key), len(value))
                offset += len(record)
        self._file.close()
        os.replace(compact_path, self._path)
        self._file = open(self._path, "a+b")
        self._index = new_index
        self._invalidate_sorted_keys()

    def close(self) -> None:
        if self._metrics_key is not None:
            REGISTRY.unregister(self._metrics_key)
            self._metrics_key = None
        if not self._file.closed:
            self._file.close()

    def __enter__(self) -> "AppendLogStore":
        return self

    def __exit__(self, *_exc_info: object) -> None:
        self.close()
