"""The key-value store interface the server engine writes against.

Keys and values are opaque byte strings.  The interface is intentionally the
lowest common denominator of wide-column / KV stores (get, put, delete,
multi-get, prefix scan) so that the rest of the system stays portable across
backends — the paper makes the same argument for building on a standard
distributed KV store.

The batch operations (``multi_get`` / ``multi_put`` / ``multi_delete``) are
first-class primitives, not conveniences: the index and server hot paths
funnel every coalesced write set and every query-time node fetch through
them, so a backend that implements them as one round trip (one lock
acquisition, one buffered append + fsync, one request per cluster node)
collapses the per-record store traffic that otherwise dominates ingest and
query cost.  The base class provides scalar-loop fallbacks so ad-hoc
backends keep working, but every bundled backend overrides them.
"""

from __future__ import annotations

import bisect
import itertools
from abc import ABC, abstractmethod
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple


def sorted_keys_from(keys: List[bytes], prefix: bytes, after: Optional[bytes]) -> Iterator[bytes]:
    """Walk a *sorted* key list from a prefix/cursor position.

    The shared seek used by the sorted-key-cache backends (memory,
    append-log): bisect to the prefix (or strictly past the exclusive
    ``after`` cursor when it lies inside the prefix region) and stop at the
    first key outside the prefix — the prefix region is contiguous in
    sorted order, so each page walk is O(log n + page).  ``keys`` must not
    be mutated while the iterator is live (the cache backends guarantee
    this by replacing, never mutating, a published list).
    """
    from_start = after is None or after < prefix
    start = bisect.bisect_left(keys, prefix) if from_start else bisect.bisect_right(keys, after)
    for index in range(start, len(keys)):
        key = keys[index]
        if not key.startswith(prefix):
            break
        yield key


class SortedKeyCache:
    """Mixin owning the lazily rebuilt sorted-key list behind cursor scans.

    Backends with an in-memory key set (memory, append-log) share the same
    pattern: keep ``sorted(keys)`` around so paged scans bisect instead of
    re-sorting, and throw the list away whenever the key *set* changes (a
    value overwrite keeps it valid).  Invariant: a published list is never
    mutated in place — mutations only call :meth:`_invalidate_sorted_keys`
    and the next scan builds a *new* list — so an in-flight iterator can
    keep walking its captured snapshot.

    Subclasses implement :meth:`_live_keys` and call the cache accessors
    under whatever lock guards their key set; the mixin itself adds none.
    """

    _sorted_keys: Optional[List[bytes]] = None

    def _live_keys(self) -> Iterable[bytes]:
        """The current key set (called to rebuild the cache)."""
        raise NotImplementedError

    def _invalidate_sorted_keys(self) -> None:
        """Drop the cache; call whenever a key is added or removed."""
        self._sorted_keys = None

    def _keys_sorted(self) -> List[bytes]:
        """The cached sorted key list (call under the subclass's lock)."""
        if self._sorted_keys is None:
            self._sorted_keys = sorted(self._live_keys())
        return self._sorted_keys

    def _keys_from(self, prefix: bytes, after: Optional[bytes] = None) -> Iterator[bytes]:
        """Seek into the cached sorted keys (call under the subclass's lock)."""
        return sorted_keys_from(self._keys_sorted(), prefix, after)


class KeyValueStore(ABC):
    """Abstract key-value store."""

    @abstractmethod
    def get(self, key: bytes) -> Optional[bytes]:
        """Return the value stored under ``key`` or ``None``."""

    @abstractmethod
    def put(self, key: bytes, value: bytes) -> None:
        """Store ``value`` under ``key``, replacing any previous value."""

    @abstractmethod
    def delete(self, key: bytes) -> bool:
        """Remove ``key``; returns True when it existed."""

    @abstractmethod
    def scan_prefix(self, prefix: bytes) -> Iterator[Tuple[bytes, bytes]]:
        """Yield ``(key, value)`` pairs whose key starts with ``prefix``, in key order."""

    # -- batch primitives (scalar-loop fallbacks; real backends override) ----------

    def multi_get(self, keys: Iterable[bytes]) -> Dict[bytes, Optional[bytes]]:
        """Batched get: one round trip on backends with real batching."""
        return {key: self.get(key) for key in keys}

    def multi_put(self, items: Iterable[Tuple[bytes, bytes]]) -> None:
        """Batched put: one round trip on backends with real batching."""
        for key, value in items:
            self.put(key, value)

    def multi_delete(self, keys: Iterable[bytes]) -> Set[bytes]:
        """Batched delete; returns the subset of keys that existed.

        Returning the keys (not a count) lets replicated backends compose the
        result: a key logically existed if any replica held it.
        """
        return {key for key in keys if self.delete(key)}

    # -- conveniences with default implementations --------------------------------

    def scan_from(self, prefix: bytes, after: Optional[bytes] = None) -> Iterator[Tuple[bytes, bytes]]:
        """``scan_prefix`` resumed strictly after ``after`` (paged-scan hook).

        Paged remote scans re-enter the keyspace once per page; backends
        with sorted key access should override this with a real seek so a
        page costs O(page), not O(keys-before-cursor).  The fallback skips
        over the prefix scan, which is correct but linear.
        """
        scan = self.scan_prefix(prefix)
        if after is None:
            return scan
        return itertools.dropwhile(lambda item, cursor=after: item[0] <= cursor, scan)

    def scan_keys(self, prefix: bytes) -> Iterator[bytes]:
        """Yield only the keys under ``prefix``, in key order.

        Backends where values are large or remote should override this to
        avoid materializing (or transferring) values that the caller — key
        audits, :meth:`~repro.storage.cluster.StorageCluster.repair_node`'s
        membership pass — will immediately discard.
        """
        return (key for key, _value in self.scan_prefix(prefix))

    def scan_key_sizes(self, prefix: bytes) -> Iterator[Tuple[bytes, int]]:
        """Yield ``(key, stored_bytes)`` pairs (``len(key) + len(value)``).

        The sizing analogue of :meth:`scan_keys`: remote backends override
        it so size accounting ships key names and integers, not values.
        """
        return ((key, len(key) + len(value)) for key, value in self.scan_prefix(prefix))

    def scan_sizes_from(self, prefix: bytes, after: Optional[bytes] = None) -> Iterator[Tuple[bytes, int]]:
        """Cursor-resumed ``(key, value_length)`` pairs (paged keys-only scans).

        Backends that index value lengths (the append-log store, a remote
        node) override this so keys-only pages never touch value payloads.
        """
        return ((key, len(value)) for key, value in self.scan_from(prefix, after))

    def scan_range(self, prefix: bytes, lo: bytes, hi: bytes) -> Iterator[Tuple[bytes, bytes]]:
        """``(key, value)`` pairs under ``prefix`` with ``lo <= key <= hi``.

        The range-filtered scan behind windowed lookups (envelope ranges,
        shard recovery).  Remote backends override this so the filter runs
        on the node and only matching items cross the wire; the local
        default filters in-loop and stops at the first key past ``hi``.
        """
        for key, value in self.scan_from(prefix):
            if key > hi:
                break
            if key >= lo:
                yield key, value

    def delete_prefix(self, prefix: bytes, batch_size: int = 4096) -> int:
        """Delete every key under ``prefix``; returns how many existed.

        The bulk-erase primitive behind ``delete_stream`` and grant
        revocation.  Remote backends override this with a single
        server-side operation; the default materializes the key list first
        (so the walk never races its own deletes) and removes it in
        bounded batches.
        """
        keys = list(self.scan_keys(prefix))
        deleted = 0
        for start in range(0, len(keys), batch_size):
            deleted += len(self.multi_delete(keys[start : start + batch_size]))
        return deleted

    def delete_prefixes(self, prefixes: Iterable[bytes]) -> int:
        """Delete every key under each prefix; returns the total removed.

        Batched so remote backends can erase several keyspaces (a stream's
        chunks *and* index nodes) in one round trip per node.
        """
        return sum(self.delete_prefix(prefix) for prefix in prefixes)

    def contains(self, key: bytes) -> bool:
        return self.get(key) is not None

    def keys_with_prefix(self, prefix: bytes) -> List[bytes]:
        return [key for key, _value in self.scan_prefix(prefix)]

    def count_prefix(self, prefix: bytes) -> int:
        return sum(1 for _ in self.scan_prefix(prefix))

    def size_bytes(self) -> int:
        """Total stored bytes (keys + values); used for index-size reporting."""
        return sum(len(key) + len(value) for key, value in self.scan_prefix(b""))

    def close(self) -> None:  # pragma: no cover - default is a no-op
        """Release any resources held by the backend."""
