"""In-memory key-value store.

The default backend for tests and micro-benchmarks: a sorted-key dict with
the same interface as the persistent stores.  It also tracks simple
operation counters so benchmarks can report read/write amplification.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

from repro.storage.kv import KeyValueStore


@dataclass
class StoreStats:
    """Operation counters for a store instance."""

    gets: int = 0
    puts: int = 0
    deletes: int = 0
    scans: int = 0

    def reset(self) -> None:
        self.gets = 0
        self.puts = 0
        self.deletes = 0
        self.scans = 0


class MemoryStore(KeyValueStore):
    """A dict-backed store with ordered prefix scans."""

    def __init__(self) -> None:
        self._data: Dict[bytes, bytes] = {}
        self.stats = StoreStats()

    def get(self, key: bytes) -> Optional[bytes]:
        self.stats.gets += 1
        return self._data.get(key)

    def put(self, key: bytes, value: bytes) -> None:
        self.stats.puts += 1
        self._data[key] = value

    def delete(self, key: bytes) -> bool:
        self.stats.deletes += 1
        return self._data.pop(key, None) is not None

    def scan_prefix(self, prefix: bytes) -> Iterator[Tuple[bytes, bytes]]:
        self.stats.scans += 1
        for key in sorted(self._data):
            if key.startswith(prefix):
                yield key, self._data[key]

    def __len__(self) -> int:
        return len(self._data)

    def size_bytes(self) -> int:
        return sum(len(key) + len(value) for key, value in self._data.items())

    def clear(self) -> None:
        self._data.clear()
