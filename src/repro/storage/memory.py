"""In-memory key-value store.

The default backend for tests and micro-benchmarks: a sorted-key dict with
the same interface as the persistent stores.  It also tracks operation
counters so benchmarks can report read/write amplification and backend
round trips: every scalar call counts as one round trip, every ``multi_*``
call counts as one round trip regardless of how many keys it moves.

All operations take a single lock, so a ``multi_put`` of n items is one
lock acquisition (and one atomically visible batch) instead of n — the
in-memory analogue of the one-request-per-batch behaviour of the
persistent and clustered backends.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Optional, Set, Tuple

from repro.obs.metrics import REGISTRY
from repro.storage.kv import KeyValueStore, SortedKeyCache, sorted_keys_from


@dataclass
class StoreStats:
    """Operation counters for a store instance.

    ``gets``/``puts``/``deletes``/``scans`` count scalar calls; the
    ``multi_*`` pairs count batched calls and the keys they carried.  A
    backend round trip is one scalar call or one batched call, so
    ``read_round_trips``/``write_round_trips`` are the numbers a remote
    backend would see as network requests.
    """

    gets: int = 0
    puts: int = 0
    deletes: int = 0
    scans: int = 0
    multi_gets: int = 0
    multi_get_keys: int = 0
    multi_puts: int = 0
    multi_put_keys: int = 0
    multi_deletes: int = 0
    multi_delete_keys: int = 0

    @property
    def read_round_trips(self) -> int:
        return self.gets + self.multi_gets + self.scans

    @property
    def write_round_trips(self) -> int:
        return self.puts + self.deletes + self.multi_puts + self.multi_deletes

    @property
    def round_trips(self) -> int:
        return self.read_round_trips + self.write_round_trips

    def reset(self) -> None:
        self.gets = 0
        self.puts = 0
        self.deletes = 0
        self.scans = 0
        self.multi_gets = 0
        self.multi_get_keys = 0
        self.multi_puts = 0
        self.multi_put_keys = 0
        self.multi_deletes = 0
        self.multi_delete_keys = 0


class MemoryStore(SortedKeyCache, KeyValueStore):
    """A dict-backed store with ordered prefix scans and single-lock bulk ops.

    Cursor scans lean on :class:`SortedKeyCache`: the sorted key list is
    rebuilt lazily after key-set changes and published lists are never
    mutated, so in-flight scans keep iterating their captured snapshot.
    """

    def __init__(self) -> None:
        self._data: Dict[bytes, bytes] = {}
        self._lock = threading.Lock()
        self.stats = StoreStats()
        # Weakly held, so a collected store prunes itself — but keep the key
        # so close() detaches promptly instead of waiting for GC (two live
        # stores would collide on the registry name until then).
        self._metrics_key = REGISTRY.register("store.memory", self.stats)

    def close(self) -> None:
        if self._metrics_key is not None:
            REGISTRY.unregister(self._metrics_key)
            self._metrics_key = None

    def _live_keys(self) -> Iterable[bytes]:
        return self._data

    def get(self, key: bytes) -> Optional[bytes]:
        with self._lock:
            self.stats.gets += 1
            return self._data.get(key)

    def put(self, key: bytes, value: bytes) -> None:
        with self._lock:
            self.stats.puts += 1
            if key not in self._data:
                self._invalidate_sorted_keys()
            self._data[key] = value

    def delete(self, key: bytes) -> bool:
        with self._lock:
            self.stats.deletes += 1
            existed = self._data.pop(key, None) is not None
            if existed:
                self._invalidate_sorted_keys()
            return existed

    def scan_prefix(self, prefix: bytes) -> Iterator[Tuple[bytes, bytes]]:
        with self._lock:
            self.stats.scans += 1
            snapshot = [(key, self._data[key]) for key in sorted(self._data) if key.startswith(prefix)]
        yield from snapshot

    def scan_from(self, prefix: bytes, after: Optional[bytes] = None) -> Iterator[Tuple[bytes, bytes]]:
        """Cursor-resumed scan: bisect into the sorted-key cache, values lazy.

        On a quiescent store each page is O(page): the sorted key list is
        reused across pages (rebuilt only after a write), the cursor is a
        bisect, the prefix region is contiguous in sorted order, and values
        are looked up as the consumer advances — a paged reader that stops
        early never touches the values behind the rest of the keyspace.
        Keys deleted mid-scan are skipped, matching a fresh ``scan_prefix``.
        """
        with self._lock:
            self.stats.scans += 1
            keys = self._keys_sorted()
        for key in sorted_keys_from(keys, prefix, after):
            with self._lock:
                value = self._data.get(key)
            if value is not None:
                yield key, value

    # -- batch primitives ---------------------------------------------------------

    def multi_get(self, keys: Iterable[bytes]) -> Dict[bytes, Optional[bytes]]:
        keys = list(keys)
        if not keys:
            return {}
        with self._lock:
            result = {key: self._data.get(key) for key in keys}
            self.stats.multi_gets += 1
            self.stats.multi_get_keys += len(result)
        return result

    def multi_put(self, items: Iterable[Tuple[bytes, bytes]]) -> None:
        materialized = list(items)
        if not materialized:
            return
        with self._lock:
            for key, value in materialized:
                self._data[key] = value
            self._invalidate_sorted_keys()
            self.stats.multi_puts += 1
            self.stats.multi_put_keys += len(materialized)

    def multi_delete(self, keys: Iterable[bytes]) -> Set[bytes]:
        materialized = list(keys)
        if not materialized:
            return set()
        with self._lock:
            existed = {key for key in materialized if self._data.pop(key, None) is not None}
            if existed:
                self._invalidate_sorted_keys()
            self.stats.multi_deletes += 1
            self.stats.multi_delete_keys += len(materialized)
        return existed

    def __len__(self) -> int:
        return len(self._data)

    def size_bytes(self) -> int:
        with self._lock:
            return sum(len(key) + len(value) for key, value in self._data.items())

    def clear(self) -> None:
        with self._lock:
            self._data.clear()
            self._invalidate_sorted_keys()
