"""The remote storage node: a TCP server fronting one local KeyValueStore.

This is the storage tier of the distributed deployment shape: the paper's
server is a thin crypto-oblivious layer over a distributed key-value store
(Cassandra in their prototype), and here each *storage node* is its own
process — a :class:`StorageNodeServer` serving the raw
:class:`~repro.storage.kv.KeyValueStore` contract over the same pipelined
framing-v2 wire protocol the engine tier speaks (``kv_*`` operations, see
:mod:`repro.net.messages`).  A :class:`~repro.storage.cluster.StorageCluster`
whose ``store_factory`` returns
:class:`~repro.storage.remote.RemoteKeyValueStore` clients then replicates
across real sockets instead of in-process objects.

Wire encoding: keys and values are opaque byte strings, so every key and
value travels as a binary attachment, never inside the JSON header.

* ``kv_get``        — attachments ``[key]`` → ``{found}`` + ``[value]`` if found
* ``kv_put``        — attachments ``[key, value]``
* ``kv_delete``     — attachments ``[key]`` → ``{existed}``
* ``kv_multi_get``  — attachments ``keys`` → ``{found: [indices]}`` + values
  of the found keys, in index order; a response that would blow the frame
  cap serves a byte-capped head and returns the rest as ``deferred``
  indices for the client to re-request
* ``kv_multi_put``  — attachments ``[k0, v0, k1, v1, ...]`` → ``{stored}``
* ``kv_multi_delete`` — attachments ``keys`` → ``{existed: [indices]}``
* ``kv_scan_page``  — args ``{limit, keys_only}``, attachments ``[prefix]``
  or ``[prefix, after]`` (exclusive cursor) → ``{num_items, truncated}`` +
  ``[k0, v0, k1, v1, ...]`` (keys only when ``keys_only``); clients stream
  big scans page by page, bounded per page by count and bytes
* ``kv_scan_prefix`` — args ``{limit?, keys_only?, cursor?, range?}``,
  attachments ``[prefix] (+ [after] when cursor) (+ [lo, hi] when range)``
  → same result shape as ``kv_scan_page``, but the node walks the whole
  prefix region (range-filtered, byte-capped) in one response instead of
  one default-sized page — the scan-offload read op
* ``kv_delete_prefix`` — attachments = one or more non-empty prefixes →
  ``{deleted}``; the node erases the keyspaces locally in bounded batches,
  so bulk erase is one round trip instead of a paged scan-then-delete
  driven by the engine
* ``kv_size_bytes`` — → ``{bytes}``

The node server deliberately does **not** own its store's lifetime: the
store is the node's disk, the server is the node's process.  Stopping the
server (a crash, a restart) leaves the store's contents intact, which is
exactly what the cluster's mark-down → ``mark_up`` → hint-replay →
``repair_node`` cycle expects to heal — parked hints for the node live in
*other* nodes' stores under the reserved ``hint/`` keyspace, so on a
persistent backend they survive restarts of the hosting node too.  The
same store-outlives-process property is what makes live topology changes
safe: ``StorageCluster.add_node`` can dial a node that just started empty
and stream its ranges to it, and ``decommission_node`` leaves the detached
node's contents on disk, exactly like a Cassandra decommission.
"""

from __future__ import annotations

import threading
from typing import List, Optional, Tuple

from repro.exceptions import ProtocolError, StorageError, TimeCryptError
from repro.net.messages import Request, Response, retain
from repro.net.server import (
    DEFAULT_BULK_QUEUE_LIMIT,
    DEFAULT_CREDIT_WINDOW,
    TimeCryptTCPServer,
    WireDispatcher,
)
from repro.storage.kv import KeyValueStore

#: Default page size for ``kv_scan_page`` when the client does not ask.
DEFAULT_SCAN_PAGE_LIMIT = 1024
#: Hard ceiling on one scan page, far below the 64 MiB frame cap for
#: typical chunk sizes while still amortizing the round trip.
MAX_SCAN_PAGE_LIMIT = 8192
#: Soft cap on one response's attachment bytes.  Responses always carry at
#: least one item past the cap so progress is guaranteed, which bounds a
#: response at this cap plus one value — safely inside the 64 MiB frame cap
#: as long as individual values respect the clients' request split size.
RESPONSE_BYTE_CAP = 32 * 1024 * 1024


class StorageNodeDispatcher(WireDispatcher):
    """Maps ``kv_*`` wire requests onto one local :class:`KeyValueStore`.

    The TCP server dispatches frames from a worker pool, but the injected
    store is **not** required to be thread-safe (``AppendLogStore`` shares
    one file handle and an unlocked index): every handler runs under a
    per-dispatcher lock, so the store only ever sees one operation at a
    time.  Concurrency still pays off on the wire — requests batch, frame,
    and queue concurrently — while the store, which is the node's actual
    bottleneck, executes serially exactly as its single-process contract
    assumes.
    """

    def __init__(self, store: KeyValueStore) -> None:
        self._store = store
        self._store_lock = threading.Lock()

    @property
    def store(self) -> KeyValueStore:
        return self._store

    def dispatch(self, request: Request) -> Response:
        if request.operation.startswith("kv_"):
            with self._store_lock:
                return super().dispatch(request)
        # hello/ping/stats/trace_dump touch no store state — they must stay
        # responsive on a busy node, or reconnect negotiation, liveness
        # checks, and telemetry scrapes would be blocked by the very load
        # they are meant to see through.
        return super().dispatch(request)

    def _unexpected_error(self, exc: Exception) -> TimeCryptError:
        if isinstance(exc, OSError):
            # A failing local backend (disk full, closed log file) must
            # surface as a typed storage error the cluster can treat as a
            # node outage — not tear down the connection.
            return StorageError(f"storage backend failed: {exc}")
        return super()._unexpected_error(exc)

    # -- helpers -------------------------------------------------------------------
    #
    # The zero-copy server hands dispatchers memoryview attachments over
    # per-frame buffers.  Keys are used as dict keys / set members / ordering
    # bounds and stored past the request's lifetime, so every key (and every
    # stored value) is pinned with retain() at the wire boundary.

    @staticmethod
    def _one_key(request: Request) -> bytes:
        if len(request.attachments) != 1:
            raise ProtocolError(f"{request.operation} requires exactly one key attachment")
        return retain(request.attachments[0])

    # -- scalar ops ----------------------------------------------------------------

    def _op_kv_get(self, request: Request) -> Response:
        value = self._store.get(self._one_key(request))
        if value is None:
            return Response.success({"found": False})
        return Response.success({"found": True}, [value])

    def _op_kv_put(self, request: Request) -> Response:
        if len(request.attachments) != 2:
            raise ProtocolError("kv_put requires key and value attachments")
        key, value = (retain(blob) for blob in request.attachments)
        self._store.put(key, value)
        return Response.success()

    def _op_kv_delete(self, request: Request) -> Response:
        existed = self._store.delete(self._one_key(request))
        return Response.success({"existed": existed})

    # -- batch ops -----------------------------------------------------------------

    def _op_kv_multi_get(self, request: Request) -> Response:
        """Batched get; oversized result sets defer their tail to the client.

        Clients bound the *request* size, but cannot know value sizes, so
        the response is byte-capped here: once the accumulated values pass
        :data:`RESPONSE_BYTE_CAP` (with at least one value served, so a
        retry loop always progresses), every not-yet-served key's index is
        returned in ``deferred`` and the client re-requests those keys —
        instead of the encoder blowing the 64 MiB frame cap and the client
        reading the dead air as a node outage.  Values are fetched from the
        store in small sub-batches so the deferred tail is never read at
        all (it will be read by the retry wave that actually ships it).
        """
        keys = [retain(key) for key in request.attachments]
        indices: List[int] = []
        values: List[bytes] = []
        deferred: List[int] = []
        total_bytes = 0
        capped = False
        chunk_size = 64
        for start in range(0, len(keys), chunk_size):
            chunk = keys[start : start + chunk_size]
            if capped:
                deferred.extend(range(start, start + len(chunk)))
                continue
            found = self._store.multi_get(chunk)
            for offset, key in enumerate(chunk):
                value = found.get(key)
                if value is None:
                    continue
                if capped or (values and total_bytes + len(value) > RESPONSE_BYTE_CAP):
                    capped = True
                    deferred.append(start + offset)
                    continue
                indices.append(start + offset)
                values.append(value)
                total_bytes += len(value)
        result = {"found": indices}
        if deferred:
            result["deferred"] = deferred
        return Response.success(result, values)

    def _op_kv_multi_put(self, request: Request) -> Response:
        if len(request.attachments) % 2:
            raise ProtocolError("kv_multi_put requires alternating key/value attachments")
        items: List[Tuple[bytes, bytes]] = [
            (retain(key), retain(value))
            for key, value in zip(request.attachments[0::2], request.attachments[1::2])
        ]
        self._store.multi_put(items)
        return Response.success({"stored": len(items)})

    def _op_kv_multi_delete(self, request: Request) -> Response:
        keys = [retain(key) for key in request.attachments]
        existed = self._store.multi_delete(keys)
        return Response.success({"existed": [i for i, key in enumerate(keys) if key in existed]})

    # -- scans / sizing ------------------------------------------------------------

    def _op_kv_scan_page(self, request: Request) -> Response:
        """One cursor-resumed scan page, bounded by item count *and* bytes.

        ``keys_only`` pages omit the values (membership walks — cluster
        repair's "which keys does the ring assign here" pass — should not
        drag every value over the wire just to discard it).  The cursor
        goes through :meth:`KeyValueStore.scan_from`, so backends with
        sorted key access seek instead of re-walking the keyspace.
        """
        if not 1 <= len(request.attachments) <= 2:
            raise ProtocolError("kv_scan_page requires a prefix (and optional cursor) attachment")
        prefix = retain(request.attachments[0])
        after: Optional[bytes] = (
            retain(request.attachments[1]) if len(request.attachments) == 2 else None
        )
        limit = int(request.args.get("limit", DEFAULT_SCAN_PAGE_LIMIT))
        if limit < 1:
            raise ProtocolError(f"kv_scan_page limit must be positive, got {limit}")
        limit = min(limit, MAX_SCAN_PAGE_LIMIT)
        keys_only = bool(request.args.get("keys_only", False))
        attachments: List[bytes] = []
        value_bytes: List[int] = []
        num_items = 0
        page_bytes = 0
        truncated = False
        # keys_only pages pull from scan_sizes_from — value lengths ride
        # along as integers and backends with indexed lengths (append-log)
        # never touch the value payloads at all.
        scan = (
            self._store.scan_sizes_from(prefix, after)
            if keys_only
            else self._store.scan_from(prefix, after)
        )
        for key, payload in scan:
            item_bytes = len(key) if keys_only else len(key) + len(payload)
            if num_items == limit or (num_items and page_bytes + item_bytes > RESPONSE_BYTE_CAP):
                truncated = True
                break
            attachments.append(key)
            if keys_only:
                value_bytes.append(payload)
            else:
                attachments.append(payload)
            num_items += 1
            page_bytes += item_bytes
        result = {"num_items": num_items, "truncated": truncated}
        if keys_only:
            result["value_bytes"] = value_bytes
        return Response.success(result, attachments)

    def _op_kv_scan_prefix(self, request: Request) -> Response:
        """One server-side prefix walk: filter, cap, and ship only matches.

        The scan-offload read op.  Unlike ``kv_scan_page`` there is no
        default item limit — the response is bounded by bytes (and any
        explicit ``limit``), so a typical prefix region arrives in one round
        trip; oversized regions set ``truncated`` and the client resumes
        from the last returned key.  With the ``range`` flag only keys in
        ``[lo, hi]`` (inclusive) are served: the node walks key/size pairs
        first and fetches just the matching values, so filtered-out values
        never leave the backend at all.
        """
        attachments = [retain(blob) for blob in request.attachments]
        if not attachments:
            raise ProtocolError("kv_scan_prefix requires a prefix attachment")
        prefix = attachments.pop(0)
        after: Optional[bytes] = None
        if request.args.get("cursor"):
            if not attachments:
                raise ProtocolError("kv_scan_prefix cursor flag set without a cursor attachment")
            after = attachments.pop(0)
        lo: Optional[bytes] = None
        hi: Optional[bytes] = None
        if request.args.get("range"):
            if len(attachments) != 2:
                raise ProtocolError("kv_scan_prefix range flag needs lo and hi attachments")
            lo, hi = attachments
        elif attachments:
            raise ProtocolError("kv_scan_prefix got unexpected attachments")
        limit = request.args.get("limit")
        if limit is not None:
            limit = int(limit)
            if limit < 1:
                raise ProtocolError(f"kv_scan_prefix limit must be positive, got {limit}")
        keys_only = bool(request.args.get("keys_only", False))
        matched: List[bytes] = []
        sizes: List[int] = []
        page_bytes = 0
        truncated = False
        for key, value_length in self._store.scan_sizes_from(prefix, after):
            if hi is not None and key > hi:
                break
            if lo is not None and key < lo:
                continue
            item_bytes = len(key) if keys_only else len(key) + value_length
            if (limit is not None and len(matched) == limit) or (
                matched and page_bytes + item_bytes > RESPONSE_BYTE_CAP
            ):
                truncated = True
                break
            matched.append(key)
            sizes.append(value_length)
            page_bytes += item_bytes
        if keys_only:
            return Response.success(
                {"num_items": len(matched), "truncated": truncated, "value_bytes": sizes},
                matched,
            )
        # All kv_ ops run under the dispatcher's store lock, so the values of
        # the keys matched above cannot vanish between the size walk and this
        # fetch; the .get guard below is belt-and-braces only.
        found = self._store.multi_get(matched) if matched else {}
        attachments = []
        num_items = 0
        for key in matched:
            value = found.get(key)
            if value is None:
                continue
            attachments.extend((key, value))
            num_items += 1
        return Response.success({"num_items": num_items, "truncated": truncated}, attachments)

    def _op_kv_delete_prefix(self, request: Request) -> Response:
        """Server-side bulk erase of one or more keyspaces (scan offload)."""
        if not request.attachments:
            raise ProtocolError("kv_delete_prefix requires at least one prefix attachment")
        prefixes = [retain(prefix) for prefix in request.attachments]
        for prefix in prefixes:
            if not prefix:
                raise ProtocolError("kv_delete_prefix refuses an empty prefix")
        deleted = self._store.delete_prefixes(prefixes)
        return Response.success({"deleted": int(deleted)})

    def _op_kv_size_bytes(self, request: Request) -> Response:
        return Response.success({"bytes": int(self._store.size_bytes())})


class StorageNodeServer:
    """One remote storage node: a local store behind the pipelined TCP wire.

    Reuses :class:`~repro.net.server.TimeCryptTCPServer` unchanged — the
    selector I/O loop, bounded worker pool, v1/v2 framing, and ``hello``
    negotiation all come for free; only the dispatcher differs.  Stopping
    the server does *not* close the store (the store is the node's disk);
    restart the node on the same port with a fresh ``StorageNodeServer``
    around the same store and reconnecting clients resume where they were.
    """

    def __init__(
        self,
        store: KeyValueStore,
        host: str = "127.0.0.1",
        port: int = 0,
        max_workers: int = 4,
        scheduling: str = "weighted",
        credit_window: int = DEFAULT_CREDIT_WINDOW,
        bulk_queue_limit: int = DEFAULT_BULK_QUEUE_LIMIT,
        zero_copy: bool = True,
        wire_compression: bool = False,
        node_name: Optional[str] = None,
        tracing: bool = True,
    ) -> None:
        self._store = store
        self._dispatcher = StorageNodeDispatcher(store)
        # The storage tier runs the same scheduler and credit window as the
        # engine tier: kv_multi_put floods queue in the bounded bulk class
        # (typed sheds past the cap) while query fetches stay interactive.
        self._tcp = TimeCryptTCPServer(
            host=host,
            port=port,
            max_workers=max_workers,
            dispatcher=self._dispatcher,
            scheduling=scheduling,
            credit_window=credit_window,
            bulk_queue_limit=bulk_queue_limit,
            zero_copy=zero_copy,
            wire_compression=wire_compression,
            node_name=node_name,
            tracing=tracing,
        )

    @property
    def address(self) -> Tuple[str, int]:
        return self._tcp.address

    @property
    def store(self) -> KeyValueStore:
        return self._store

    def scheduler_stats(self) -> dict:
        """The transport scheduler's deterministic counters (sheds, depths)."""
        return self._tcp.scheduler_stats()

    def start(self) -> "StorageNodeServer":
        self._tcp.start()
        return self

    def stop(self) -> None:
        """Stop serving; the store and its contents stay untouched."""
        self._tcp.stop()

    def __enter__(self) -> "StorageNodeServer":
        return self.start()

    def __exit__(self, *_exc_info: object) -> None:
        self.stop()
