"""Consistent-hash partitioning (how the Cassandra stand-in places data).

Keys are hashed onto a ring; each physical node owns several virtual tokens
so that adding or removing a node only moves a small fraction of the keys.
Replica sets are the N distinct nodes encountered walking clockwise from the
key's position — the same token-ring design Cassandra and Dynamo use.
Ownership is *inclusive*: the first token whose position is greater than or
equal to the key's hash owns the key (the Dynamo/Cassandra convention), so a
key whose hash collides exactly with a virtual token belongs to that token's
node, not its successor.

Rings are cheap to :meth:`~ConsistentHashRing.copy`: a cluster performing a
live membership change builds the *new* ring as a copy, mutates the copy,
and swaps it in atomically, so concurrent readers always see either the old
or the new topology — never a ring mid-mutation.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Sequence, Tuple

from repro.exceptions import PartitionError


def _hash_to_ring(data: bytes) -> int:
    """Position of ``data`` on the 128-bit ring."""
    return int.from_bytes(hashlib.blake2b(data, digest_size=16).digest(), "big")


class ConsistentHashRing:
    """A token ring mapping keys to replica sets of node names."""

    def __init__(self, nodes: Sequence[str] = (), virtual_tokens: int = 64) -> None:
        if virtual_tokens <= 0:
            raise ValueError("virtual_tokens must be positive")
        self._virtual_tokens = virtual_tokens
        self._tokens: List[Tuple[int, str]] = []
        self._nodes: Dict[str, bool] = {}
        for node in nodes:
            self.add_node(node)

    # -- membership -----------------------------------------------------------

    @property
    def nodes(self) -> List[str]:
        return sorted(self._nodes)

    def add_node(self, node: str) -> None:
        """Add a node and its virtual tokens to the ring."""
        if node in self._nodes:
            raise ValueError(f"node '{node}' already in the ring")
        self._nodes[node] = True
        for token_index in range(self._virtual_tokens):
            position = _hash_to_ring(f"{node}#{token_index}".encode("utf-8"))
            bisect.insort(self._tokens, (position, node))

    def remove_node(self, node: str) -> None:
        """Remove a node (e.g. on failure); its ranges fall to the successors."""
        if node not in self._nodes:
            raise ValueError(f"node '{node}' not in the ring")
        del self._nodes[node]
        self._tokens = [(pos, name) for pos, name in self._tokens if name != node]

    def copy(self) -> "ConsistentHashRing":
        """An independent ring with the same tokens and membership.

        Used for live topology changes: mutate the copy, then publish it in
        one reference assignment so in-flight placements never observe a
        half-updated token list.
        """
        clone = ConsistentHashRing(virtual_tokens=self._virtual_tokens)
        clone._tokens = list(self._tokens)
        clone._nodes = dict(self._nodes)
        return clone

    # -- placement ----------------------------------------------------------------

    def primary(self, key: bytes) -> str:
        """The first replica responsible for ``key``."""
        return self.replicas(key, 1)[0]

    def replicas(self, key: bytes, replication_factor: int) -> List[str]:
        """The ``replication_factor`` distinct nodes responsible for ``key``."""
        if not self._tokens:
            raise PartitionError("the ring has no nodes")
        if replication_factor <= 0:
            raise ValueError("replication_factor must be positive")
        available = len(self._nodes)
        wanted = min(replication_factor, available)
        position = _hash_to_ring(key)
        # Inclusive clockwise seek: the first token with position >= hash(key)
        # owns the key.  Node names are non-empty, so (position, "") sorts
        # before every real token at that position and bisect_left lands on
        # it — a bisect_right past (position, "￿") would skip a token
        # whose position equals the key's hash and hand the key to the next
        # token's node instead.
        start = bisect.bisect_left(self._tokens, (position, ""))
        replicas: List[str] = []
        for step in range(len(self._tokens)):
            _token, node = self._tokens[(start + step) % len(self._tokens)]
            if node not in replicas:
                replicas.append(node)
                if len(replicas) == wanted:
                    break
        return replicas

    def ownership_fractions(self, sample_keys: int = 4096) -> Dict[str, float]:
        """Approximate fraction of keys owned by each node (for balance checks)."""
        counts: Dict[str, int] = {node: 0 for node in self._nodes}
        for sample in range(sample_keys):
            counts[self.primary(sample.to_bytes(8, "big"))] += 1
        return {node: count / sample_keys for node, count in counts.items()}
