"""A KeyValueStore client for a remote :class:`StorageNodeServer`.

:class:`RemoteKeyValueStore` implements the full
:class:`~repro.storage.kv.KeyValueStore` contract over the pipelined
framing-v2 wire protocol (the ``kv_*`` op family), so a
:class:`~repro.storage.cluster.StorageCluster` can use it as a node
``store_factory`` and replicate across real sockets.  Design points:

* **One batch = one round trip.**  ``multi_get``/``multi_put``/
  ``multi_delete`` ship the whole key set as a single ``kv_multi_*``
  request; a batch too large for one frame is split by payload size and the
  parts go out back-to-back through the transport's ``call_many`` — still a
  single wire round trip.  Combined with the cluster's per-node grouping, a
  cluster batch of n keys costs one round trip per owning node, not n·RF.
* **Streaming scans, offloaded when possible.**  ``scan_prefix`` is a
  generator that streams the keyspace on demand without materializing it
  client-side or hitting the frame cap.  Against a peer that advertises
  ``kv_scan_prefix`` it pulls byte-capped *regions* (one round trip for a
  typical prefix, range filters applied on the node); against an older
  peer it falls back to fixed-size ``kv_scan_page`` pages.  Likewise
  ``delete_prefix`` is one ``kv_delete_prefix`` round trip on a current
  peer and a paged scan-then-``multi_delete`` walk on an old one.
* **Failures are node outages.**  Connection refusal, timeouts, dropped
  sockets, and transport-level protocol errors all surface as
  :class:`~repro.exceptions.StorageError`, which is exactly what the
  cluster's ``_NODE_FAILURES`` mark-down/re-route/repair machinery treats
  as a downed node.  Typed remote errors raised *by* the store itself
  propagate unchanged.
* **Reconnect.**  The connection is created lazily and dropped on any
  transport failure; the next operation dials again (one retry per
  operation), so a node restart heals transparently.  Idempotent KV
  operations make the at-least-once retry safe; the one observable wrinkle
  is that a ``delete`` retried across a reconnect can report
  ``existed=False`` for a key its first, half-lost attempt removed.
* **Elastic membership.**  A client is cheap before its first operation
  (no socket until then), so ``StorageCluster.add_node`` can adopt a
  ``RemoteKeyValueStore`` for a node that is still booting; the handoff's
  first batch dials it.  ``decommission_node`` calls :meth:`close`, which
  only drops the connection — the detached node keeps its data.
"""

from __future__ import annotations

import logging
import threading
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.exceptions import OverloadedError, ProtocolError, StorageError, TransportError
from repro.net.client import RemoteServerClient, WireStats, _remote_error
from repro.net.messages import Request, Response, retain
from repro.obs.metrics import REGISTRY
from repro.storage.kv import KeyValueStore

logger = logging.getLogger(__name__)

#: Soft cap on one request's attachment payload; frames are hard-capped at
#: 64 MiB, so splitting at 32 MiB leaves ample room for headers and keys.
DEFAULT_MAX_REQUEST_BYTES = 32 * 1024 * 1024
#: Keys per kv_multi_get / kv_multi_delete part.
DEFAULT_MAX_KEYS_PER_REQUEST = 8192


class RemoteKeyValueStore(KeyValueStore):
    """The client half of a remote storage node (see module docstring)."""

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 10.0,
        scan_page_size: int = 1024,
        max_request_bytes: int = DEFAULT_MAX_REQUEST_BYTES,
        max_keys_per_request: int = DEFAULT_MAX_KEYS_PER_REQUEST,
        reconnect: bool = True,
        prefix_ops: bool = True,
        overload_retries: int = 4,
        zero_copy: bool = True,
        compression: bool = False,
        tracing: bool = False,
    ) -> None:
        if scan_page_size < 1:
            raise ValueError("scan_page_size must be positive")
        #: When True the underlying transport attaches trace contexts to
        #: outbound kv_* requests — inside a traced engine handler those
        #: spans join the request's tree (see repro.obs.tracing).
        self._tracing = bool(tracing)
        #: Transport-level retry budget for typed ``overloaded`` sheds; once
        #: exhausted, the shed surfaces here and is wrapped as StorageError.
        self._overload_retries = max(0, int(overload_retries))
        #: When False, never use the kv_scan_prefix / kv_delete_prefix
        #: offload ops even against a peer that advertises them — the
        #: legacy-pager escape hatch (and the before/after lever the
        #: sharding benchmark uses to measure the offload).
        self._prefix_ops = prefix_ops
        self._address = (host, port)
        self._timeout = timeout
        self._scan_page_size = scan_page_size
        self._max_request_bytes = max_request_bytes
        self._max_keys_per_request = max_keys_per_request
        self._reconnect = reconnect
        self._zero_copy = zero_copy
        self._compression = compression
        self._client: Optional[RemoteServerClient] = None
        self._client_lock = threading.Lock()
        #: Wire accounting that survives reconnects: the same WireStats
        #: object is handed to every underlying client, so per-node
        #: round-trip counters stay continuous across node restarts.
        self.wire_stats = WireStats()
        self._metrics_key: Optional[str] = REGISTRY.register(
            f"store.remote.{host}:{port}", self.wire_stats
        )

    @property
    def address(self) -> Tuple[str, int]:
        return self._address

    # -- connection management -----------------------------------------------------

    def _ensure_client(self) -> RemoteServerClient:
        """The live transport, dialing (or redialing) if necessary."""
        with self._client_lock:
            if self._client is not None:
                return self._client
        # Dial outside the lock: the connect + hello handshake can block for
        # the full timeout against a dead peer, and holding _client_lock for
        # that long wedges every thread that merely wants the cached
        # transport (the cluster's fan-out pool among them).
        try:
            client = RemoteServerClient(
                self._address[0],
                self._address[1],
                timeout=self._timeout,
                overload_retries=self._overload_retries,
                zero_copy=self._zero_copy,
                compression=self._compression,
                tracing=self._tracing,
            )
        except (OSError, TransportError) as exc:
            raise StorageError(
                f"storage node {self._address} unreachable: {exc}"
            ) from exc
        client.wire_stats = self.wire_stats
        if client.protocol_version != 2:
            # The transport's v1 fallback fires when the peer drops
            # the connection mid-hello — which is what a *restarting*
            # storage node looks like.  There is no v1 mode for the
            # kv_* ops, so treat it as the outage it is (retryable,
            # cluster marks the node down), not a config error.
            client.close()
            raise StorageError(
                f"storage node {self._address} did not complete v2 negotiation "
                "(node restarting or v1-only peer)"
            )
        if not client.supports_operation("kv_multi_put"):
            client.close()
            # A reachable peer of the wrong tier is a topology /
            # configuration error, not an outage: raise the
            # non-retryable ProtocolError so callers (and the
            # cluster) do not redial or mark the node down.
            raise ProtocolError(
                f"peer at {self._address} does not serve the kv_* storage-node "
                "operations (is it an engine server?)"
            )
        with self._client_lock:
            if self._client is None:
                self._client = client
                if self._metrics_key is None:
                    # Store reused after close(): re-attach its wire stats.
                    self._metrics_key = REGISTRY.register(
                        f"store.remote.{self._address[0]}:{self._address[1]}",
                        self.wire_stats,
                    )
                return client
            winner = self._client
        # Lost a concurrent dial race: keep the installed transport.
        client.close()
        return winner

    def _drop_client(self) -> None:
        with self._client_lock:
            client, self._client = self._client, None
        if client is not None:
            client.close()

    def connect(self) -> "RemoteKeyValueStore":
        """Eagerly dial the node (the first operation otherwise does it lazily)."""
        self._ensure_client()
        return self

    def ping(self) -> bool:
        return bool(self._call(Request("ping")).result.get("pong"))

    def close(self) -> None:
        """Drop the connection.  The store may be reused; the next op redials."""
        if self._metrics_key is not None:
            REGISTRY.unregister(self._metrics_key)
            self._metrics_key = None
        self._drop_client()

    # -- wire plumbing -------------------------------------------------------------

    def _call(self, request: Request) -> Response:
        """One request, one round trip, with one reconnect retry.

        Transport failures (refused, reset, timed out, unparseable peer)
        become :class:`StorageError` so the cluster marks the node down;
        typed errors the remote store raised propagate unchanged.
        """
        return self._call_many([request])[0]

    def _call_many(self, requests: Sequence[Request]) -> List[Response]:
        """A request batch in one round trip, with one reconnect retry."""
        last_error: Optional[Exception] = None
        for _attempt in range(2 if self._reconnect else 1):
            try:
                client = self._ensure_client()
                responses = client.call_many(list(requests))
            except StorageError as exc:  # dial failure from _ensure_client
                last_error = exc
                continue
            except ProtocolError:
                # Raised locally by frame encoding (e.g. a single value past
                # the 64 MiB cap): a deterministic caller error no reconnect
                # can fix.  Propagate it unchanged — wrapping it in
                # StorageError would make the cluster mark a healthy node
                # down and replay the same failure on every replica.
                raise
            except TransportError as exc:
                # call_many itself only raises transport-level trouble
                # (remote per-request errors come back inside responses).
                logger.info(
                    "storage node %s connection lost (%s); redialling", self._address, exc
                )
                self._drop_client()
                last_error = exc
                continue
            for response in responses:
                if not response.ok:
                    error = _remote_error(response)
                    if isinstance(error, OverloadedError):
                        # The node is still shedding after the client's own
                        # capped backoff retries: treat persistent overload
                        # like an outage so the cluster marks the node down
                        # and re-routes, instead of crashing the caller.
                        raise StorageError(
                            f"storage node {self._address} overloaded: {error}"
                        ) from error
                    raise error
            return responses
        raise StorageError(
            f"storage node {self._address} unreachable: {last_error}"
        ) from last_error

    # -- KeyValueStore contract ----------------------------------------------------

    def get(self, key: bytes) -> Optional[bytes]:
        response = self._call(Request("kv_get", {}, [key]))
        if not response.result.get("found"):
            return None
        return retain(response.attachments[0])

    def put(self, key: bytes, value: bytes) -> None:
        self._call(Request("kv_put", {}, [key, value]))

    def delete(self, key: bytes) -> bool:
        return bool(self._call(Request("kv_delete", {}, [key])).result.get("existed"))

    # -- batch primitives: one wire round trip per batch ---------------------------

    def _split(self, items: List, size_of: Callable) -> Iterator[List]:
        """Split a batch by item count and payload size (frame-cap safety)."""
        part: List = []
        part_bytes = 0
        for item in items:
            item_bytes = size_of(item)
            if part and (
                len(part) >= self._max_keys_per_request
                or part_bytes + item_bytes > self._max_request_bytes
            ):
                yield part
                part, part_bytes = [], 0
            part.append(item)
            part_bytes += item_bytes
        if part:
            yield part

    def _key_parts(self, keys: List[bytes]) -> Iterator[List[bytes]]:
        return self._split(keys, len)

    def multi_get(self, keys: Iterable[bytes]) -> Dict[bytes, Optional[bytes]]:
        materialized = list(keys)
        if not materialized:
            return {}
        result: Dict[bytes, Optional[bytes]] = {key: None for key in materialized}
        parts = list(self._key_parts(materialized))
        # The node byte-caps responses and defers the tail (see
        # ``kv_multi_get`` in storage/node.py); each retry wave re-requests
        # every deferred key in one further round trip.  The node always
        # serves at least one value per request, so the loop terminates.
        while parts:
            responses = self._call_many([Request("kv_multi_get", {}, part) for part in parts])
            deferred_keys: List[bytes] = []
            for part, response in zip(parts, responses):
                for index, value in zip(response.result["found"], response.attachments):
                    result[part[index]] = retain(value)
                deferred_keys.extend(
                    part[index] for index in response.result.get("deferred", ())
                )
            parts = list(self._key_parts(deferred_keys)) if deferred_keys else []
        return result

    def multi_put(self, items: Iterable[Tuple[bytes, bytes]]) -> None:
        materialized = list(items)
        if not materialized:
            return
        self._call_many(
            [
                Request(
                    "kv_multi_put",
                    {},
                    [blob for key_value in part for blob in key_value],
                )
                for part in self._split(materialized, lambda item: len(item[0]) + len(item[1]))
            ]
        )

    def multi_delete(self, keys: Iterable[bytes]) -> Set[bytes]:
        materialized = list(keys)
        if not materialized:
            return set()
        parts = list(self._key_parts(materialized))
        responses = self._call_many(
            [Request("kv_multi_delete", {}, part) for part in parts]
        )
        existed: Set[bytes] = set()
        for part, response in zip(parts, responses):
            existed.update(part[index] for index in response.result["existed"])
        return existed

    # -- scans / sizing ------------------------------------------------------------

    def _offload_supported(self, operation: str) -> bool:
        """Whether the scan-offload fast path applies for ``operation``."""
        if not self._prefix_ops:
            return False
        try:
            return self._ensure_client().supports_operation(operation)
        except StorageError:
            # Node unreachable: claim support and let the actual call do the
            # reconnect-retry dance (and surface the outage as usual).
            return True

    def _scan(
        self,
        prefix: bytes,
        after: Optional[bytes],
        keys_only: bool,
        lo: Optional[bytes] = None,
        hi: Optional[bytes] = None,
    ):
        """The chooser behind all scan flavours: offload when the peer can.

        Yields ``(key, value_length)`` pairs when ``keys_only`` else
        ``(key, value)`` pairs, optionally restricted to ``lo <= key <= hi``.
        """
        if self._offload_supported("kv_scan_prefix"):
            yield from self._offload_scan(prefix, after, keys_only, lo, hi)
            return
        scan = self._paged_scan(prefix, after, keys_only)
        if lo is None:
            yield from scan
            return
        # Legacy peer: the range filter runs client-side, which still stops
        # the page walk at the first key past ``hi``.
        for key, payload in scan:
            if key > hi:
                return
            if key >= lo:
                yield key, payload

    def _offload_scan(
        self,
        prefix: bytes,
        after: Optional[bytes],
        keys_only: bool,
        lo: Optional[bytes],
        hi: Optional[bytes],
    ):
        """The ``kv_scan_prefix`` fast path: node-side filtering per region.

        ``scan_page_size`` still bounds the items per round trip (laziness is
        part of the scan contract); the win over ``kv_scan_page`` is that
        range filters run on the node, so skipped keys never cross the wire.
        """
        while True:
            args: Dict = {"limit": self._scan_page_size}
            attachments = [prefix]
            if after is not None:
                args["cursor"] = True
                attachments.append(after)
            if lo is not None and hi is not None:
                args["range"] = True
                attachments.extend((lo, hi))
            if keys_only:
                args["keys_only"] = True
            response = self._call(Request("kv_scan_prefix", args, attachments))
            # Scan results escape to the caller (and keys become cursors), so
            # pin them off the frame buffers here.
            blobs = [retain(blob) for blob in response.attachments]
            if keys_only:
                yield from zip(blobs, response.result.get("value_bytes", ()))
            else:
                yield from zip(blobs[0::2], blobs[1::2])
            if not response.result.get("truncated"):
                return
            if not blobs:
                raise ProtocolError("kv_scan_prefix returned a truncated empty region")
            after = blobs[-1] if keys_only else blobs[-2]

    def _paged_scan(self, prefix: bytes, after: Optional[bytes], keys_only: bool):
        """The legacy ``kv_scan_page`` pager (peers without scan offload).

        ``keys_only`` pages yield ``(key, value_length)`` pairs (lengths
        travel as integers in the header); value pages yield ``(key,
        value)`` pairs.
        """
        args = {"limit": self._scan_page_size}
        if keys_only:
            args["keys_only"] = True
        while True:
            attachments = [prefix] if after is None else [prefix, after]
            response = self._call(Request("kv_scan_page", dict(args), attachments))
            blobs = [retain(blob) for blob in response.attachments]
            if keys_only:
                yield from zip(blobs, response.result.get("value_bytes", ()))
            else:
                yield from zip(blobs[0::2], blobs[1::2])
            if not response.result.get("truncated"):
                return
            after = blobs[-1] if keys_only else blobs[-2]

    def scan_prefix(self, prefix: bytes) -> Iterator[Tuple[bytes, bytes]]:
        """Stream ``(key, value)`` pairs lazily; one round trip per region/page."""
        return self._scan(prefix, None, keys_only=False)

    def scan_from(
        self, prefix: bytes, after: Optional[bytes] = None
    ) -> Iterator[Tuple[bytes, bytes]]:
        return self._scan(prefix, after, keys_only=False)

    def scan_range(self, prefix: bytes, lo: bytes, hi: bytes) -> Iterator[Tuple[bytes, bytes]]:
        """Range-filtered scan: on a current peer the filter runs node-side,
        so only keys in ``[lo, hi]`` ever cross the wire."""
        return self._scan(prefix, None, keys_only=False, lo=lo, hi=hi)

    def scan_keys(self, prefix: bytes) -> Iterator[bytes]:
        """Stream only the keys under ``prefix`` — no value bytes on the wire."""
        return (key for key, _size in self._scan(prefix, None, keys_only=True))

    def scan_key_sizes(self, prefix: bytes) -> Iterator[Tuple[bytes, int]]:
        """Stream ``(key, stored_bytes)`` — sizes as integers, never values."""
        return (
            (key, len(key) + value_length)
            for key, value_length in self._scan(prefix, None, keys_only=True)
        )

    def scan_sizes_from(self, prefix: bytes, after: Optional[bytes] = None) -> Iterator[Tuple[bytes, int]]:
        """Cursor-resumed ``(key, value_length)`` pairs via keys-only scans."""
        return self._scan(prefix, after, keys_only=True)

    def keys_with_prefix(self, prefix: bytes) -> List[bytes]:
        return list(self.scan_keys(prefix))

    # -- bulk erase ----------------------------------------------------------------

    def delete_prefix(self, prefix: bytes, batch_size: int = 4096) -> int:
        return self.delete_prefixes([prefix])

    def delete_prefixes(self, prefixes: Iterable[bytes]) -> int:
        """Erase whole keyspaces in one ``kv_delete_prefix`` round trip.

        Against a peer that predates the op, fall back to the client-driven
        walk: stream the keys and ``multi_delete`` them in request-sized
        batches (the O(pages) behaviour the offload exists to remove).
        """
        materialized = list(prefixes)
        if not materialized:
            return 0
        if self._offload_supported("kv_delete_prefix"):
            response = self._call(Request("kv_delete_prefix", {}, materialized))
            return int(response.result["deleted"])
        deleted = 0
        for prefix in materialized:
            batch: List[bytes] = []
            for key in self.scan_keys(prefix):
                batch.append(key)
                if len(batch) >= self._max_keys_per_request:
                    deleted += len(self.multi_delete(batch))
                    batch = []
            if batch:
                deleted += len(self.multi_delete(batch))
        return deleted

    def count_prefix(self, prefix: bytes) -> int:
        return sum(1 for _ in self.scan_keys(prefix))

    def size_bytes(self) -> int:
        return int(self._call(Request("kv_size_bytes")).result["bytes"])
