"""Time-series data model: points, streams, chunks, digests, compression."""

from repro.timeseries.chunk import Chunk, ChunkBuilder
from repro.timeseries.digest import Digest, DigestConfig, HistogramConfig
from repro.timeseries.point import DataPoint
from repro.timeseries.stream import StreamConfig, StreamMetadata

__all__ = [
    "DataPoint",
    "StreamConfig",
    "StreamMetadata",
    "Digest",
    "DigestConfig",
    "HistogramConfig",
    "Chunk",
    "ChunkBuilder",
]
