"""Chunks: time-ordered batches of points plus their digest (paper §4.1).

The client serializes points into fixed time-interval chunks.  Each chunk
carries:

* the raw point payload (compressed, then AEAD-encrypted on the write path),
* a digest vector (encrypted with HEAC so the server can aggregate it),
* its window index — the position in the keystream / aggregation index.

:class:`ChunkBuilder` implements the client-side batching: points are
appended in order and a chunk is emitted whenever the next point crosses the
current window boundary (or on explicit flush).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional

from repro.exceptions import ChunkError, OutOfOrderError
from repro.timeseries.digest import Digest, DigestConfig
from repro.timeseries.point import DataPoint
from repro.timeseries.stream import StreamConfig
from repro.util.timeutil import TimeRange


@dataclass
class Chunk:
    """A plaintext chunk: one window's points and their digest."""

    window_index: int
    time_range: TimeRange
    points: List[DataPoint]
    digest: Digest

    def __post_init__(self) -> None:
        for point in self.points:
            if not self.time_range.contains(point.timestamp):
                raise ChunkError(
                    f"point at {point.timestamp} outside chunk window {self.time_range}"
                )

    @property
    def num_points(self) -> int:
        return len(self.points)

    @classmethod
    def of_points(
        cls,
        window_index: int,
        time_range: TimeRange,
        points: Iterable[DataPoint],
        digest_config: DigestConfig,
    ) -> "Chunk":
        materialised = sorted(points, key=lambda p: p.timestamp)
        return cls(
            window_index=window_index,
            time_range=time_range,
            points=materialised,
            digest=Digest.of_points(digest_config, materialised),
        )


@dataclass
class ChunkBuilder:
    """Client-side batching of an append-only point stream into chunks.

    Points must arrive with non-decreasing timestamps (time series ingest is
    in-order append-only, §4.5); an out-of-order point raises
    :class:`OutOfOrderError`.  Chunks are emitted strictly in window order;
    empty windows between points are emitted as empty chunks so the keystream
    position always equals the window index.
    """

    config: StreamConfig
    emit_empty_chunks: bool = True
    _current_window: Optional[int] = field(default=None, init=False)
    _points: List[DataPoint] = field(default_factory=list, init=False)
    _last_timestamp: Optional[int] = field(default=None, init=False)

    def append(self, point: DataPoint) -> List[Chunk]:
        """Add a point; returns the chunks completed by this append (possibly none)."""
        if self._last_timestamp is not None and point.timestamp < self._last_timestamp:
            raise OutOfOrderError(
                f"point at {point.timestamp} arrived after {self._last_timestamp}"
            )
        self._last_timestamp = point.timestamp
        window = self.config.window_of(point.timestamp)
        completed: List[Chunk] = []
        if self._current_window is None:
            self._current_window = window
        elif window != self._current_window:
            completed.extend(self._emit_through(window))
        self._points.append(point)
        return completed

    def extend(self, points: Iterable[DataPoint]) -> List[Chunk]:
        """Append many points; returns all chunks completed along the way."""
        completed: List[Chunk] = []
        for point in points:
            completed.extend(self.append(point))
        return completed

    def flush(self) -> List[Chunk]:
        """Emit the current partial chunk (ends the stream segment)."""
        if self._current_window is None:
            return []
        chunk = self._build_chunk(self._current_window, self._points)
        self._current_window = None
        self._points = []
        return [chunk]

    def _emit_through(self, next_window: int) -> Iterator[Chunk]:
        """Emit the finished window and any empty windows before ``next_window``."""
        assert self._current_window is not None
        chunks = [self._build_chunk(self._current_window, self._points)]
        if self.emit_empty_chunks:
            for empty_window in range(self._current_window + 1, next_window):
                chunks.append(self._build_chunk(empty_window, []))
        self._current_window = next_window
        self._points = []
        return iter(chunks)

    def _build_chunk(self, window_index: int, points: List[DataPoint]) -> Chunk:
        start = self.config.window_start(window_index)
        time_range = TimeRange(start, start + self.config.chunk_interval)
        return Chunk.of_points(window_index, time_range, points, self.config.digest)


def chunks_from_points(
    config: StreamConfig, points: Iterable[DataPoint], emit_empty_chunks: bool = True
) -> List[Chunk]:
    """Batch a complete point sequence into chunks (builder + flush)."""
    builder = ChunkBuilder(config=config, emit_empty_chunks=emit_empty_chunks)
    chunks = builder.extend(points)
    chunks.extend(builder.flush())
    return chunks
