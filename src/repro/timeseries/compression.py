"""Lossless compression codecs for raw chunk payloads (paper §4.1).

TimeCrypt compresses chunk payloads before encrypting them; the paper's
default is zlib, with the note that delta-style encodings work well for
low-precision data.  We implement a small codec family behind a single
interface so the stream configuration can pick per-workload:

* ``none``        — identity (useful as a baseline in ablations)
* ``zlib``        — DEFLATE over the serialized points (paper default)
* ``delta``       — delta-of-delta timestamps + zigzag/varint values
  (Gorilla-style integer compression), good for regular sampling intervals
* ``delta-zlib``  — delta encoding followed by zlib, best of both for most
  monitoring workloads.

Codecs operate on the already-serialized point buffer (bytes in, bytes out)
except the delta codecs, which understand the point structure and therefore
expose encode/decode over point lists as well.
"""

from __future__ import annotations

import zlib
from abc import ABC, abstractmethod
from typing import Dict, List, Tuple, Type

from repro.exceptions import ChunkError, ConfigurationError
from repro.timeseries.point import DataPoint
from repro.util.encoding import (
    decode_signed_varint,
    decode_varint,
    encode_signed_varint,
    encode_varint,
)


def serialize_points(points: List[DataPoint]) -> bytes:
    """Canonical flat serialization: count, then (timestamp, value) varint pairs."""
    out = bytearray(encode_varint(len(points)))
    for point in points:
        out += encode_signed_varint(point.timestamp)
        out += encode_signed_varint(point.value)
    return bytes(out)


def deserialize_points(data: bytes) -> List[DataPoint]:
    """Inverse of :func:`serialize_points`."""
    count, pos = decode_varint(data, 0)
    points: List[DataPoint] = []
    for _ in range(count):
        timestamp, pos = decode_signed_varint(data, pos)
        value, pos = decode_signed_varint(data, pos)
        points.append(DataPoint(timestamp=timestamp, value=value))
    return points


class Codec(ABC):
    """A lossless transform over serialized chunk payloads."""

    name = "abstract"

    @abstractmethod
    def compress(self, points: List[DataPoint]) -> bytes:
        """Encode a chunk's points into a compressed payload."""

    @abstractmethod
    def decompress(self, payload: bytes) -> List[DataPoint]:
        """Recover the exact point list from a compressed payload."""


class NoneCodec(Codec):
    """Identity codec: serialization only."""

    name = "none"

    def compress(self, points: List[DataPoint]) -> bytes:
        return serialize_points(points)

    def decompress(self, payload: bytes) -> List[DataPoint]:
        return deserialize_points(payload)


class ZlibCodec(Codec):
    """DEFLATE over the canonical serialization (the paper's default)."""

    name = "zlib"

    def __init__(self, level: int = 6) -> None:
        if not 0 <= level <= 9:
            raise ConfigurationError("zlib level must be between 0 and 9")
        self._level = level

    def compress(self, points: List[DataPoint]) -> bytes:
        return zlib.compress(serialize_points(points), self._level)

    def decompress(self, payload: bytes) -> List[DataPoint]:
        try:
            raw = zlib.decompress(payload)
        except zlib.error as exc:
            raise ChunkError("corrupt zlib chunk payload") from exc
        return deserialize_points(raw)


class DeltaCodec(Codec):
    """Delta-of-delta timestamps and delta values, zigzag/varint packed.

    Monitoring streams have near-constant sampling intervals, so the second
    difference of the timestamps is almost always zero and packs into a
    single byte; values are delta-encoded, which collapses slowly-varying
    metrics (CPU %, heart rate) dramatically.
    """

    name = "delta"

    def compress(self, points: List[DataPoint]) -> bytes:
        out = bytearray(encode_varint(len(points)))
        if not points:
            return bytes(out)
        first = points[0]
        out += encode_signed_varint(first.timestamp)
        out += encode_signed_varint(first.value)
        previous_ts = first.timestamp
        previous_delta = 0
        previous_value = first.value
        for point in points[1:]:
            delta = point.timestamp - previous_ts
            out += encode_signed_varint(delta - previous_delta)
            out += encode_signed_varint(point.value - previous_value)
            previous_delta = delta
            previous_ts = point.timestamp
            previous_value = point.value
        return bytes(out)

    def decompress(self, payload: bytes) -> List[DataPoint]:
        count, pos = decode_varint(payload, 0)
        if count == 0:
            return []
        timestamp, pos = decode_signed_varint(payload, pos)
        value, pos = decode_signed_varint(payload, pos)
        points = [DataPoint(timestamp=timestamp, value=value)]
        previous_delta = 0
        for _ in range(count - 1):
            delta_of_delta, pos = decode_signed_varint(payload, pos)
            value_delta, pos = decode_signed_varint(payload, pos)
            previous_delta += delta_of_delta
            timestamp += previous_delta
            value += value_delta
            points.append(DataPoint(timestamp=timestamp, value=value))
        return points


class DeltaZlibCodec(Codec):
    """Delta encoding followed by zlib."""

    name = "delta-zlib"

    def __init__(self, level: int = 6) -> None:
        self._delta = DeltaCodec()
        self._level = level

    def compress(self, points: List[DataPoint]) -> bytes:
        return zlib.compress(self._delta.compress(points), self._level)

    def decompress(self, payload: bytes) -> List[DataPoint]:
        try:
            raw = zlib.decompress(payload)
        except zlib.error as exc:
            raise ChunkError("corrupt delta-zlib chunk payload") from exc
        return self._delta.decompress(raw)


_CODECS: Dict[str, Type[Codec]] = {
    NoneCodec.name: NoneCodec,
    ZlibCodec.name: ZlibCodec,
    DeltaCodec.name: DeltaCodec,
    DeltaZlibCodec.name: DeltaZlibCodec,
}


def available_codecs() -> Tuple[str, ...]:
    return tuple(sorted(_CODECS))


def get_codec(name: str) -> Codec:
    """Instantiate a codec by configuration name."""
    try:
        return _CODECS[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown compression codec '{name}'; available: {', '.join(available_codecs())}"
        ) from None


def compression_ratio(points: List[DataPoint], codec_name: str) -> float:
    """Ratio of raw serialized size to compressed size (>1 means smaller)."""
    raw = len(serialize_points(points))
    compressed = len(get_codec(codec_name).compress(points))
    return raw / compressed if compressed else float("inf")
