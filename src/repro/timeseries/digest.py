"""Chunk digests: the statistical summaries HEAC encrypts (paper §4.1, §4.5).

Every chunk carries a digest — a vector of aggregates over the chunk's points.
The digest layout is configured per stream and determines which statistical
queries the server can answer:

* ``sum`` and ``count``  → SUM, COUNT, MEAN
* ``sum_of_squares``     → VAR, STDEV (via E[x²] − E[x]²)
* histogram bin counts   → HISTOGRAM, MIN/MAX (first/last non-empty bin) and
  frequency counts, without order-revealing encryption.

Digests combine by component-wise addition, which is exactly the operation
HEAC supports homomorphically; the plaintext :class:`Digest` here is used by
the client before encryption, by the plaintext baseline system, and by tests
as the ground truth the encrypted path must match.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError, QueryError
from repro.timeseries.point import DataPoint

#: Operators servable from each digest capability.
LINEAR_OPERATORS = ("sum", "count", "mean")
QUADRATIC_OPERATORS = ("var", "stdev")
HISTOGRAM_OPERATORS = ("freq", "min", "max", "histogram")


@dataclass(frozen=True)
class HistogramConfig:
    """Fixed bin boundaries for the frequency-count part of the digest.

    ``boundaries`` are the inner edges; values below the first edge fall in
    bin 0, values at or above the last edge fall in the last bin, giving
    ``len(boundaries) + 1`` bins.
    """

    boundaries: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if list(self.boundaries) != sorted(self.boundaries):
            raise ConfigurationError("histogram boundaries must be sorted")
        if len(set(self.boundaries)) != len(self.boundaries):
            raise ConfigurationError("histogram boundaries must be distinct")

    @property
    def num_bins(self) -> int:
        return len(self.boundaries) + 1 if self.boundaries else 0

    def bin_of(self, value: int) -> int:
        """Index of the bin containing ``value``."""
        if not self.boundaries:
            raise QueryError("histogram is not configured for this stream")
        for index, edge in enumerate(self.boundaries):
            if value < edge:
                return index
        return len(self.boundaries)

    def bin_range(self, index: int) -> Tuple[Optional[int], Optional[int]]:
        """The half-open value interval ``[lo, hi)`` of bin ``index`` (None = unbounded)."""
        if not 0 <= index < self.num_bins:
            raise QueryError(f"bin index {index} out of range")
        lo = self.boundaries[index - 1] if index > 0 else None
        hi = self.boundaries[index] if index < len(self.boundaries) else None
        return lo, hi


@dataclass(frozen=True)
class DigestConfig:
    """Which aggregates each chunk digest carries."""

    include_sum: bool = True
    include_count: bool = True
    include_sum_of_squares: bool = True
    histogram: HistogramConfig = field(default_factory=HistogramConfig)

    @property
    def width(self) -> int:
        """Number of integer components in the digest vector."""
        return (
            int(self.include_sum)
            + int(self.include_count)
            + int(self.include_sum_of_squares)
            + self.histogram.num_bins
        )

    @property
    def component_names(self) -> Tuple[str, ...]:
        names: List[str] = []
        if self.include_sum:
            names.append("sum")
        if self.include_count:
            names.append("count")
        if self.include_sum_of_squares:
            names.append("sum_sq")
        names.extend(f"bin_{i}" for i in range(self.histogram.num_bins))
        return tuple(names)

    def supported_operators(self) -> Tuple[str, ...]:
        ops: List[str] = []
        if self.include_sum:
            ops.append("sum")
        if self.include_count:
            ops.append("count")
        if self.include_sum and self.include_count:
            ops.append("mean")
        if self.include_sum_of_squares and self.include_sum and self.include_count:
            ops.extend(QUADRATIC_OPERATORS)
        if self.histogram.num_bins:
            ops.extend(HISTOGRAM_OPERATORS)
        return tuple(ops)

    def supports(self, operator: str) -> bool:
        return operator in self.supported_operators()


@dataclass
class Digest:
    """A plaintext digest vector together with its configuration."""

    config: DigestConfig
    values: List[int]

    def __post_init__(self) -> None:
        if len(self.values) != self.config.width:
            raise ConfigurationError(
                f"digest has {len(self.values)} components, config expects {self.config.width}"
            )

    # -- construction ---------------------------------------------------------

    @classmethod
    def zero(cls, config: DigestConfig) -> "Digest":
        return cls(config=config, values=[0] * config.width)

    @classmethod
    def of_points(cls, config: DigestConfig, points: Iterable[DataPoint]) -> "Digest":
        """Compute the digest of a chunk's points."""
        digest = cls.zero(config)
        for point in points:
            digest.add_point(point)
        return digest

    def add_point(self, point: DataPoint) -> None:
        offset = 0
        if self.config.include_sum:
            self.values[offset] += point.value
            offset += 1
        if self.config.include_count:
            self.values[offset] += 1
            offset += 1
        if self.config.include_sum_of_squares:
            self.values[offset] += point.value * point.value
            offset += 1
        if self.config.histogram.num_bins:
            self.values[offset + self.config.histogram.bin_of(point.value)] += 1

    # -- combination ----------------------------------------------------------

    def __add__(self, other: "Digest") -> "Digest":
        if not isinstance(other, Digest):
            return NotImplemented
        if other.config != self.config:
            raise ConfigurationError("cannot combine digests with different configurations")
        return Digest(
            config=self.config,
            values=[a + b for a, b in zip(self.values, other.values)],
        )

    # -- component access -------------------------------------------------------

    def _component(self, name: str) -> int:
        try:
            index = self.config.component_names.index(name)
        except ValueError:
            raise QueryError(f"digest does not carry component '{name}'") from None
        return self.values[index]

    @property
    def sum(self) -> int:
        return self._component("sum")

    @property
    def count(self) -> int:
        return self._component("count")

    @property
    def sum_of_squares(self) -> int:
        return self._component("sum_sq")

    @property
    def histogram_counts(self) -> List[int]:
        bins = self.config.histogram.num_bins
        if not bins:
            raise QueryError("histogram is not configured for this stream")
        return self.values[-bins:]

    # -- derived statistics ------------------------------------------------------

    def mean(self) -> float:
        count = self.count
        if count == 0:
            raise QueryError("cannot compute the mean of an empty range")
        return self.sum / count

    def variance(self) -> float:
        """Population variance via E[x²] − E[x]²."""
        count = self.count
        if count == 0:
            raise QueryError("cannot compute the variance of an empty range")
        mean = self.sum / count
        return self.sum_of_squares / count - mean * mean

    def stdev(self) -> float:
        return max(0.0, self.variance()) ** 0.5

    def min_bin(self) -> int:
        """Index of the lowest non-empty histogram bin (the MIN approximation)."""
        for index, bin_count in enumerate(self.histogram_counts):
            if bin_count:
                return index
        raise QueryError("cannot compute MIN of an empty range")

    def max_bin(self) -> int:
        """Index of the highest non-empty histogram bin (the MAX approximation)."""
        counts = self.histogram_counts
        for index in range(len(counts) - 1, -1, -1):
            if counts[index]:
                return index
        raise QueryError("cannot compute MAX of an empty range")

    def evaluate(self, operator: str) -> object:
        """Evaluate a named statistical operator against this digest."""
        operator = operator.lower()
        if not self.config.supports(operator):
            raise QueryError(f"operator '{operator}' is not supported by this digest layout")
        if operator == "sum":
            return self.sum
        if operator == "count":
            return self.count
        if operator == "mean":
            return self.mean()
        if operator == "var":
            return self.variance()
        if operator == "stdev":
            return self.stdev()
        if operator in ("freq", "histogram"):
            return list(self.histogram_counts)
        if operator == "min":
            return self.config.histogram.bin_range(self.min_bin())
        if operator == "max":
            return self.config.histogram.bin_range(self.max_bin())
        raise QueryError(f"unknown operator '{operator}'")


def sum_digests(digests: Sequence[Digest]) -> Digest:
    """Combine a non-empty sequence of digests."""
    if not digests:
        raise QueryError("cannot combine an empty digest sequence")
    total = digests[0]
    for digest in digests[1:]:
        total = total + digest
    return total
