"""Data points: the atoms of a time series stream.

A point is a ``(timestamp, value)`` pair (paper §2).  TimeCrypt's encrypted
digests operate over integers modulo 2^64, so float-valued metrics (heart
rate in bpm, CPU utilisation in percent, ...) are stored as fixed-point
integers with a per-stream scale factor; the helpers here perform that
conversion consistently on the write and read paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Union

Number = Union[int, float]


@dataclass(frozen=True, order=True)
class DataPoint:
    """A single measurement: integer timestamp plus fixed-point integer value."""

    timestamp: int
    value: int

    def __post_init__(self) -> None:
        if not isinstance(self.timestamp, int):
            raise TypeError("timestamps must be integers")
        if not isinstance(self.value, int):
            raise TypeError(
                "DataPoint values are fixed-point integers; use encode_value() "
                "to convert floats"
            )


def encode_value(value: Number, scale: int = 1) -> int:
    """Convert a measurement to its fixed-point integer representation.

    ``scale`` is the number of integer units per 1.0 of the raw measurement
    (e.g. ``scale=100`` stores two decimal places).
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    return round(value * scale)


def decode_value(value: int, scale: int = 1) -> float:
    """Convert a fixed-point integer back into the measurement's unit."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    return value / scale


def make_points(
    timestamps: Iterable[int], values: Iterable[Number], scale: int = 1
) -> List[DataPoint]:
    """Build a list of points from parallel timestamp/value sequences."""
    points = [
        DataPoint(timestamp=ts, value=encode_value(val, scale))
        for ts, val in zip(timestamps, values)
    ]
    return points


def validate_sorted(points: Iterable[DataPoint]) -> List[DataPoint]:
    """Return the points as a list, requiring non-decreasing timestamps."""
    materialised = list(points)
    for earlier, later in zip(materialised, materialised[1:]):
        if later.timestamp < earlier.timestamp:
            raise ValueError(
                f"points out of order: {later.timestamp} after {earlier.timestamp}"
            )
    return materialised
