"""Binary serialization of encrypted chunks and digests (the storage format).

What the server stores per chunk window (paper §4.1, §4.6):

* an **encrypted chunk blob** — compressed points sealed with AES-GCM under a
  key derived from the HEAC keystream; opaque to the server,
* an **encrypted digest vector** — one HEAC ciphertext per digest component,
  which the server *can* aggregate (but not decrypt).

Records are keyed by ``stream-id || window-encoding`` (see
:func:`chunk_storage_key`), mirroring the paper's "identifier computed
on-the-fly from the temporal range boundaries" design.

The formats below are deliberately simple length-prefixed structures; they
stand in for the protobuf messages of the original prototype.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.crypto.heac import HEACCiphertext
from repro.exceptions import ChunkError
from repro.util.encoding import decode_varint, encode_varint

_MAGIC_CHUNK = b"TCC1"
_MAGIC_DIGEST = b"TCD1"


@dataclass(frozen=True)
class EncryptedChunk:
    """An encrypted chunk as stored by the server."""

    stream_uuid: str
    window_index: int
    payload: bytes  # AEAD blob over the compressed points
    digest: List[HEACCiphertext]
    num_points: int

    @property
    def size_bytes(self) -> int:
        return len(self.payload) + 8 * len(self.digest)


def encode_digest_vector(digest: Sequence[HEACCiphertext]) -> bytes:
    """Serialize a vector of HEAC ciphertexts."""
    out = bytearray(_MAGIC_DIGEST)
    out += encode_varint(len(digest))
    for ciphertext in digest:
        out += ciphertext.value.to_bytes(8, "big")
        out += encode_varint(ciphertext.window_start)
        out += encode_varint(ciphertext.window_end)
    return bytes(out)


def decode_digest_vector(blob: bytes) -> List[HEACCiphertext]:
    """Inverse of :func:`encode_digest_vector`."""
    if blob[:4] != _MAGIC_DIGEST:
        raise ChunkError("not a digest vector blob")
    count, pos = decode_varint(blob, 4)
    digest: List[HEACCiphertext] = []
    for _ in range(count):
        if pos + 8 > len(blob):
            raise ChunkError("truncated digest vector")
        value = int.from_bytes(blob[pos : pos + 8], "big")
        pos += 8
        window_start, pos = decode_varint(blob, pos)
        window_end, pos = decode_varint(blob, pos)
        digest.append(HEACCiphertext(value=value, window_start=window_start, window_end=window_end))
    return digest


def encode_encrypted_chunk(chunk: EncryptedChunk) -> bytes:
    """Serialize an :class:`EncryptedChunk` for storage or the wire."""
    uuid_bytes = chunk.stream_uuid.encode("utf-8")
    digest_blob = encode_digest_vector(chunk.digest)
    out = bytearray(_MAGIC_CHUNK)
    out += encode_varint(len(uuid_bytes))
    out += uuid_bytes
    out += encode_varint(chunk.window_index)
    out += encode_varint(chunk.num_points)
    out += encode_varint(len(digest_blob))
    out += digest_blob
    out += encode_varint(len(chunk.payload))
    out += chunk.payload
    return bytes(out)


def decode_encrypted_chunk(blob: bytes) -> EncryptedChunk:
    """Inverse of :func:`encode_encrypted_chunk`.

    Accepts any bytes-like ``blob`` (the zero-copy wire path hands in
    memoryviews over frame buffers).  The returned chunk owns its payload as
    real bytes — chunks outlive the frame they arrived in.
    """
    if blob[:4] != _MAGIC_CHUNK:
        raise ChunkError("not an encrypted chunk blob")
    pos = 4
    uuid_len, pos = decode_varint(blob, pos)
    stream_uuid = bytes(blob[pos : pos + uuid_len]).decode("utf-8")
    pos += uuid_len
    window_index, pos = decode_varint(blob, pos)
    num_points, pos = decode_varint(blob, pos)
    digest_len, pos = decode_varint(blob, pos)
    digest = decode_digest_vector(blob[pos : pos + digest_len])
    pos += digest_len
    payload_len, pos = decode_varint(blob, pos)
    payload = bytes(blob[pos : pos + payload_len])
    if len(payload) != payload_len:
        raise ChunkError("truncated chunk payload")
    return EncryptedChunk(
        stream_uuid=stream_uuid,
        window_index=window_index,
        payload=payload,
        digest=digest,
        num_points=num_points,
    )


def peek_chunk_stream_uuid(blob: bytes) -> str:
    """The stream uuid of an encoded chunk, without decoding the chunk.

    The shard router needs only the uuid to place an ingest request; the
    encoding puts it right after the magic so routing costs one varint and a
    short slice instead of a full digest/payload decode.
    """
    if blob[:4] != _MAGIC_CHUNK:
        raise ChunkError("not an encrypted chunk blob")
    uuid_len, pos = decode_varint(blob, 4)
    uuid_bytes = bytes(blob[pos : pos + uuid_len])
    if len(uuid_bytes) != uuid_len:
        raise ChunkError("truncated chunk blob")
    return uuid_bytes.decode("utf-8")


def chunk_storage_key(stream_uuid: str, window_index: int) -> bytes:
    """Storage key of a chunk: stream id plus the window encoding."""
    return f"chunk/{stream_uuid}/{window_index:016x}".encode("ascii")


def index_node_storage_key(stream_uuid: str, level: int, position: int) -> bytes:
    """Storage key of an index node, derived from its temporal coordinates."""
    return f"index/{stream_uuid}/{level:02d}/{position:016x}".encode("ascii")


def metadata_storage_key(stream_uuid: str) -> bytes:
    """Storage key of a stream's metadata record."""
    return f"meta/{stream_uuid}".encode("ascii")
