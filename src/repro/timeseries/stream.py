"""Stream configuration and metadata.

A stream is a sequence of points from one producer (paper §2).  The
:class:`StreamConfig` captures the knobs Table 1's ``CreateStream`` accepts:
the chunk interval Δ, the compression codec, the digest layout (which
statistical operators the server should be able to answer), the fixed-point
scale, and the key-derivation parameters.
"""

from __future__ import annotations

import uuid as uuid_module
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.exceptions import ConfigurationError
from repro.timeseries.digest import DigestConfig


@dataclass(frozen=True)
class StreamConfig:
    """Per-stream parameters fixed at creation time.

    Attributes
    ----------
    chunk_interval:
        Δ — the fixed time window (in the stream's timestamp unit, typically
        milliseconds) covered by one chunk.  It is the finest granularity at
        which the server can aggregate and at which access can be granted.
    start_time:
        The stream epoch ``t0``; window ``i`` covers
        ``[t0 + i·Δ, t0 + (i+1)·Δ)``.
    digest:
        Which statistical summaries each chunk digest carries.
    compression:
        Codec name for raw chunk payloads (see
        :mod:`repro.timeseries.compression`).
    value_scale:
        Fixed-point scale for float metrics.
    key_tree_height:
        Height of the key-derivation tree; bounds the number of chunks the
        stream can ever hold at ``2**height``.
    prg:
        PRG construction used by the key tree.
    index_fanout:
        k of the k-ary aggregation index built over this stream.
    """

    chunk_interval: int = 10_000
    start_time: int = 0
    digest: DigestConfig = field(default_factory=DigestConfig)
    compression: str = "zlib"
    value_scale: int = 1
    key_tree_height: int = 30
    prg: str = "auto"
    index_fanout: int = 64

    def __post_init__(self) -> None:
        if self.chunk_interval <= 0:
            raise ConfigurationError("chunk_interval must be positive")
        if self.value_scale <= 0:
            raise ConfigurationError("value_scale must be positive")
        if not 1 <= self.key_tree_height <= 62:
            raise ConfigurationError("key_tree_height must be between 1 and 62")
        if self.index_fanout < 2:
            raise ConfigurationError("index_fanout must be at least 2")

    @property
    def max_chunks(self) -> int:
        return 1 << self.key_tree_height

    def window_start(self, window_index: int) -> int:
        return self.start_time + window_index * self.chunk_interval

    def window_of(self, timestamp: int) -> int:
        if timestamp < self.start_time:
            raise ConfigurationError(
                f"timestamp {timestamp} precedes stream start {self.start_time}"
            )
        return (timestamp - self.start_time) // self.chunk_interval


@dataclass
class StreamMetadata:
    """Descriptive metadata stored alongside a stream (never secret).

    The paper's examples: metric name ("heart rate"), source device, host,
    location.  The server can read this; only values and digests are
    encrypted.
    """

    uuid: str
    owner_id: str
    metric: str = ""
    source: str = ""
    unit: str = ""
    tags: Dict[str, str] = field(default_factory=dict)
    config: StreamConfig = field(default_factory=StreamConfig)

    @staticmethod
    def new(
        owner_id: str,
        metric: str = "",
        source: str = "",
        unit: str = "",
        config: Optional[StreamConfig] = None,
        tags: Optional[Dict[str, str]] = None,
    ) -> "StreamMetadata":
        """Create metadata with a fresh UUID."""
        return StreamMetadata(
            uuid=str(uuid_module.uuid4()),
            owner_id=owner_id,
            metric=metric,
            source=source,
            unit=unit,
            tags=dict(tags or {}),
            config=config or StreamConfig(),
        )
