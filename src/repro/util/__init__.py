"""Shared utilities: encodings, time interval math, caches, serialization."""

from repro.util.cache import LRUCache, CacheStats
from repro.util.encoding import (
    decode_varint,
    decode_zigzag,
    encode_varint,
    encode_zigzag,
    int_from_bytes,
    int_to_bytes,
)
from repro.util.timeutil import TimeRange, align_down, align_up, iter_windows

__all__ = [
    "LRUCache",
    "CacheStats",
    "encode_varint",
    "decode_varint",
    "encode_zigzag",
    "decode_zigzag",
    "int_to_bytes",
    "int_from_bytes",
    "TimeRange",
    "align_down",
    "align_up",
    "iter_windows",
]
