"""A byte-budgeted LRU cache with hit/miss statistics.

TimeCrypt keeps the hot part of the encrypted aggregation index in memory
(the paper uses the caffeine library); the index-cache size directly drives
the small-cache experiment in Figure 7.  The cache here charges each entry a
caller-supplied weight (bytes) and evicts least-recently-used entries when
the budget is exceeded.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Generic, Hashable, Iterator, Optional, Tuple, TypeVar

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


@dataclass
class CacheStats:
    """Counters describing cache effectiveness."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    insertions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.insertions = 0


@dataclass
class _Entry(Generic[V]):
    value: V
    weight: int = field(default=1)


class LRUCache(Generic[K, V]):
    """Least-recently-used cache bounded by total entry weight.

    Parameters
    ----------
    capacity:
        Maximum total weight held by the cache.  With the default
        ``weigher`` (every entry weighs 1) this is simply a max entry count.
    weigher:
        Optional callable mapping a value to its weight in arbitrary units
        (typically bytes).
    """

    def __init__(self, capacity: int, weigher: Optional[Callable[[V], int]] = None) -> None:
        if capacity <= 0:
            raise ValueError("cache capacity must be positive")
        self._capacity = capacity
        self._weigher = weigher or (lambda _value: 1)
        self._entries: "OrderedDict[K, _Entry[V]]" = OrderedDict()
        self._weight = 0
        # repro: allow[REPRO005] a bare LRUCache is a library object, not a process component; owners register it (ServerEngine exposes its cache as engine.index_cache)
        self.stats = CacheStats()

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def weight(self) -> int:
        """Current total weight of cached entries."""
        return self._weight

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: K) -> bool:
        return key in self._entries

    def get(self, key: K, default: Optional[V] = None) -> Optional[V]:
        """Return the cached value, updating recency, or ``default``."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return default
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry.value

    def peek(self, key: K, default: Optional[V] = None) -> Optional[V]:
        """Return the cached value without updating recency or statistics."""
        entry = self._entries.get(key)
        return entry.value if entry is not None else default

    def put(self, key: K, value: V) -> None:
        """Insert or replace an entry, evicting as needed to respect capacity."""
        weight = max(1, self._weigher(value))
        existing = self._entries.pop(key, None)
        if existing is not None:
            self._weight -= existing.weight
        self._entries[key] = _Entry(value=value, weight=weight)
        self._weight += weight
        self.stats.insertions += 1
        self._evict()

    def get_or_load(self, key: K, loader: Callable[[], V]) -> V:
        """Return the cached value, loading and caching it on a miss."""
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry.value
        self.stats.misses += 1
        value = loader()
        self.put(key, value)
        return value

    def invalidate(self, key: K) -> bool:
        """Drop an entry; returns True when it was present."""
        entry = self._entries.pop(key, None)
        if entry is None:
            return False
        self._weight -= entry.weight
        return True

    def clear(self) -> None:
        self._entries.clear()
        self._weight = 0

    def items(self) -> Iterator[Tuple[K, V]]:
        """Iterate over (key, value) pairs from least to most recently used."""
        for key, entry in self._entries.items():
            yield key, entry.value

    def _evict(self) -> None:
        while self._weight > self._capacity and self._entries:
            _key, entry = self._entries.popitem(last=False)
            self._weight -= entry.weight
            self.stats.evictions += 1
