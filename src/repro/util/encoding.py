"""Low-level binary encodings.

These are the building blocks of the chunk serialization format and the
wire protocol: unsigned LEB128 varints, zigzag encoding for signed deltas,
and fixed-width big-endian integer conversions.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

_MASK_64 = (1 << 64) - 1


def encode_varint(value: int) -> bytes:
    """Encode a non-negative integer as an unsigned LEB128 varint."""
    if value < 0:
        raise ValueError("varint requires a non-negative integer")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(data: bytes, offset: int = 0) -> Tuple[int, int]:
    """Decode an unsigned LEB128 varint.

    Returns ``(value, next_offset)``. Raises :class:`ValueError` on truncated
    input or on varints longer than 10 bytes (values above 2^70 are rejected
    to bound memory on malicious input).
    """
    result = 0
    shift = 0
    pos = offset
    while True:
        if pos >= len(data):
            raise ValueError("truncated varint")
        if shift > 63:
            raise ValueError("varint too long")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def encode_zigzag(value: int) -> int:
    """Map a signed integer to an unsigned one (small magnitudes stay small)."""
    return (value << 1) ^ (value >> 63) if value >= 0 else ((-value) << 1) - 1


def decode_zigzag(value: int) -> int:
    """Inverse of :func:`encode_zigzag`."""
    return (value >> 1) if not value & 1 else -((value + 1) >> 1)


def encode_signed_varint(value: int) -> bytes:
    """Zigzag + varint encode a signed integer."""
    return encode_varint(encode_zigzag(value))


def decode_signed_varint(data: bytes, offset: int = 0) -> Tuple[int, int]:
    """Decode a zigzag + varint encoded signed integer."""
    raw, pos = decode_varint(data, offset)
    return decode_zigzag(raw), pos


def int_to_bytes(value: int, length: int) -> bytes:
    """Big-endian fixed-width encoding of a non-negative integer."""
    return value.to_bytes(length, "big")


def int_from_bytes(data: bytes) -> int:
    """Big-endian decoding of a non-negative integer."""
    return int.from_bytes(data, "big")


def pack_varint_list(values: Iterable[int]) -> bytes:
    """Pack a sequence of signed integers as length-prefixed signed varints."""
    items: List[int] = list(values)
    out = bytearray(encode_varint(len(items)))
    for item in items:
        out += encode_signed_varint(item)
    return bytes(out)


def unpack_varint_list(data: bytes, offset: int = 0) -> Tuple[List[int], int]:
    """Inverse of :func:`pack_varint_list`."""
    count, pos = decode_varint(data, offset)
    values: List[int] = []
    for _ in range(count):
        value, pos = decode_signed_varint(data, pos)
        values.append(value)
    return values, pos


def to_u64(value: int) -> int:
    """Reduce an arbitrary integer into the unsigned 64-bit ring (mod 2^64)."""
    return value & _MASK_64


def from_u64_signed(value: int) -> int:
    """Interpret an unsigned 64-bit value as a two's-complement signed int."""
    value &= _MASK_64
    return value - (1 << 64) if value >= (1 << 63) else value
