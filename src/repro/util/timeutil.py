"""Time-interval arithmetic.

TimeCrypt maps every chunk to a fixed-width time window of length ``delta``
starting at the stream epoch ``t0``.  All index and key-stream positions are
derived from that mapping, so the window math lives in one place.

Timestamps are integers (milliseconds since the Unix epoch by convention,
although nothing in the library depends on the unit).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple


@dataclass(frozen=True, order=True)
class TimeRange:
    """A half-open interval ``[start, end)`` over integer timestamps."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"invalid time range [{self.start}, {self.end})")

    @property
    def duration(self) -> int:
        return self.end - self.start

    def is_empty(self) -> bool:
        return self.end == self.start

    def contains(self, ts: int) -> bool:
        return self.start <= ts < self.end

    def contains_range(self, other: "TimeRange") -> bool:
        return self.start <= other.start and other.end <= self.end

    def overlaps(self, other: "TimeRange") -> bool:
        return self.start < other.end and other.start < self.end

    def intersect(self, other: "TimeRange") -> "TimeRange":
        start = max(self.start, other.start)
        end = min(self.end, other.end)
        if end < start:
            return TimeRange(start, start)
        return TimeRange(start, end)

    def union_span(self, other: "TimeRange") -> "TimeRange":
        """Smallest range covering both (may include a gap)."""
        return TimeRange(min(self.start, other.start), max(self.end, other.end))

    def shift(self, offset: int) -> "TimeRange":
        return TimeRange(self.start + offset, self.end + offset)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.start}, {self.end})"


def align_down(ts: int, delta: int, epoch: int = 0) -> int:
    """Largest window boundary <= ``ts`` for windows of width ``delta``."""
    if delta <= 0:
        raise ValueError("delta must be positive")
    return epoch + ((ts - epoch) // delta) * delta


def align_up(ts: int, delta: int, epoch: int = 0) -> int:
    """Smallest window boundary >= ``ts`` for windows of width ``delta``."""
    if delta <= 0:
        raise ValueError("delta must be positive")
    offset = ts - epoch
    return epoch + ((offset + delta - 1) // delta) * delta


def window_index(ts: int, delta: int, epoch: int = 0) -> int:
    """Index of the chunk window containing ``ts``."""
    if delta <= 0:
        raise ValueError("delta must be positive")
    if ts < epoch:
        raise ValueError(f"timestamp {ts} precedes stream epoch {epoch}")
    return (ts - epoch) // delta


def window_range(index: int, delta: int, epoch: int = 0) -> TimeRange:
    """The time range covered by chunk window ``index``."""
    if index < 0:
        raise ValueError("window index must be non-negative")
    start = epoch + index * delta
    return TimeRange(start, start + delta)


def range_to_windows(time_range: TimeRange, delta: int, epoch: int = 0) -> Tuple[int, int]:
    """Smallest window-index interval ``[lo, hi)`` covering ``time_range``.

    The returned interval covers every window that overlaps the time range;
    callers that need exact alignment should validate alignment separately.
    """
    if time_range.is_empty():
        lo = window_index(max(time_range.start, epoch), delta, epoch)
        return lo, lo
    lo = window_index(max(time_range.start, epoch), delta, epoch)
    hi = window_index(max(time_range.end - 1, epoch), delta, epoch) + 1
    return lo, hi


def iter_windows(time_range: TimeRange, delta: int, epoch: int = 0) -> Iterator[TimeRange]:
    """Yield the chunk windows overlapping ``time_range`` in order."""
    lo, hi = range_to_windows(time_range, delta, epoch)
    for index in range(lo, hi):
        yield window_range(index, delta, epoch)


def is_aligned(ts: int, delta: int, epoch: int = 0) -> bool:
    """True when ``ts`` falls exactly on a window boundary."""
    return (ts - epoch) % delta == 0
