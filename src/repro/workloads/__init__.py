"""Workload generators for the paper's evaluation scenarios."""

from repro.workloads.devops import DevOpsWorkload
from repro.workloads.generator import LoadGenerator, LoadReport
from repro.workloads.mhealth import MHealthWorkload

__all__ = ["MHealthWorkload", "DevOpsWorkload", "LoadGenerator", "LoadReport"]
