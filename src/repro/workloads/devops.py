"""The DevOps workload: data-center CPU monitoring (paper §6.3).

The evaluation uses a synthetic CPU-monitoring workload in the style of the
Time Series Benchmark Suite's ``cpu-only`` use case: 10 CPU metrics per host,
100 hosts, one sample every 10 seconds, with a one-minute chunk interval Δ
(six records per chunk).  The queries of interest are average CPU utilisation
and the fraction of hosts above 50 % utilisation, which maps onto the digest's
sum/count components and a histogram bin boundary at 50.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

from repro.timeseries.digest import DigestConfig, HistogramConfig
from repro.timeseries.point import DataPoint
from repro.timeseries.stream import StreamConfig

#: The 10 CPU metrics of the TSBS cpu-only use case.
CPU_METRICS = (
    "usage_user",
    "usage_system",
    "usage_idle",
    "usage_nice",
    "usage_iowait",
    "usage_irq",
    "usage_softirq",
    "usage_steal",
    "usage_guest",
    "usage_guest_nice",
)

#: Paper settings: 10 s data rate, 60 s chunk interval.
SAMPLE_INTERVAL_MS = 10_000
CHUNK_INTERVAL_MS = 60_000


@dataclass
class DevOpsWorkload:
    """Deterministic generator of per-host CPU utilisation streams."""

    num_hosts: int = 100
    seed: int = 11
    start_time: int = 0
    sample_interval_ms: int = SAMPLE_INTERVAL_MS
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)
        # Each host gets a stable baseline load and burstiness level.
        self._host_profiles: Dict[int, Tuple[float, float]] = {
            host: (self._rng.uniform(5.0, 70.0), self._rng.uniform(2.0, 25.0))
            for host in range(self.num_hosts)
        }

    # -- stream configuration -------------------------------------------------------

    @staticmethod
    def stream_config(chunk_interval_ms: int = CHUNK_INTERVAL_MS) -> StreamConfig:
        """CPU utilisation stream config with the 50 % histogram boundary."""
        return StreamConfig(
            chunk_interval=chunk_interval_ms,
            value_scale=100,  # store utilisation with two decimal places
            compression="delta-zlib",
            digest=DigestConfig(
                histogram=HistogramConfig(boundaries=(2500, 5000, 7500))
            ),
        )

    def host_names(self) -> List[str]:
        return [f"host_{index:04d}" for index in range(self.num_hosts)]

    def stream_names(self, metrics: Tuple[str, ...] = CPU_METRICS) -> List[Tuple[str, str]]:
        """(host, metric) pairs — one stream each (10 × num_hosts streams)."""
        return [(host, metric) for host in self.host_names() for metric in metrics]

    # -- sample generation ------------------------------------------------------------

    def records(self, host_index: int, duration_seconds: int) -> Iterator[Tuple[int, float]]:
        """CPU utilisation records (percent) for one host."""
        if not 0 <= host_index < self.num_hosts:
            raise KeyError(f"host index {host_index} out of range")
        baseline, burst = self._host_profiles[host_index]
        rng = random.Random((self.seed << 16) ^ host_index)
        utilisation = baseline
        num_samples = duration_seconds * 1000 // self.sample_interval_ms
        for index in range(num_samples):
            # A mean-reverting random walk with occasional bursts.
            utilisation += rng.gauss(0, burst * 0.2) + 0.1 * (baseline - utilisation)
            if rng.random() < 0.02:
                utilisation += rng.uniform(10.0, 30.0)
            utilisation = min(100.0, max(0.0, utilisation))
            yield self.start_time + index * self.sample_interval_ms, utilisation

    def points(self, host_index: int, duration_seconds: int, scale: int = 100) -> List[DataPoint]:
        return [
            DataPoint(timestamp=timestamp, value=round(value * scale))
            for timestamp, value in self.records(host_index, duration_seconds)
        ]

    # -- fleet-level helpers -----------------------------------------------------------

    def fleet_records(
        self, duration_seconds: int, num_hosts: int | None = None
    ) -> Dict[str, List[Tuple[int, float]]]:
        """Records for the first ``num_hosts`` hosts (default: all)."""
        hosts = range(num_hosts if num_hosts is not None else self.num_hosts)
        return {
            f"host_{host:04d}": list(self.records(host, duration_seconds)) for host in hosts
        }

    def records_per_chunk(self, chunk_interval_ms: int = CHUNK_INTERVAL_MS) -> int:
        return chunk_interval_ms // self.sample_interval_ms
