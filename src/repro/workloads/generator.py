"""The load generator driving the end-to-end experiments (Fig. 7, §6.3).

The paper's end-to-end benchmark runs many client threads, each performing a
mix of chunk ingests and statistical queries against its streams (a 4:1
read:write ratio in the heavy-load experiment).  This module provides a
single-process equivalent: it prepares per-stream record batches, replays
them through any store exposing the TimeCrypt-shaped API (TimeCrypt itself,
the plaintext baseline, or a strawman), interleaves statistical queries at a
configurable ratio, and reports throughput and latency percentiles.
"""

from __future__ import annotations

import random
import statistics
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Protocol, Sequence, Tuple


class TimeSeriesStoreLike(Protocol):
    """The minimal store surface the load generator drives.

    Stores may additionally expose ``insert_records(uuid, records)``; the
    generator uses it for client-side batching when ``ingest_batch_size > 1``.
    """

    def insert_record(self, uuid: str, timestamp: int, value: float) -> None:  # pragma: no cover
        ...

    def flush(self, uuid: str) -> None:  # pragma: no cover
        ...

    def get_stat_range(
        self, uuid: str, start: int, end: int, operators: Sequence[str] = ...
    ) -> Dict[str, object]:  # pragma: no cover
        ...


@dataclass
class LatencySummary:
    """Latency statistics over one operation class (milliseconds)."""

    count: int
    mean_ms: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    max_ms: float

    @staticmethod
    def of(samples_seconds: Sequence[float]) -> "LatencySummary":
        if not samples_seconds:
            return LatencySummary(0, 0.0, 0.0, 0.0, 0.0, 0.0)
        ms = sorted(sample * 1000.0 for sample in samples_seconds)

        def percentile(fraction: float) -> float:
            index = min(len(ms) - 1, int(round(fraction * (len(ms) - 1))))
            return ms[index]

        return LatencySummary(
            count=len(ms),
            mean_ms=statistics.fmean(ms),
            p50_ms=percentile(0.50),
            p95_ms=percentile(0.95),
            p99_ms=percentile(0.99),
            max_ms=ms[-1],
        )


@dataclass
class LoadReport:
    """The outcome of one load-generator run."""

    label: str
    duration_seconds: float
    records_written: int
    chunks_flushed: int
    queries_executed: int
    ingest_latency: LatencySummary
    query_latency: LatencySummary

    @property
    def ingest_throughput(self) -> float:
        """Records ingested per second of wall-clock run time."""
        return self.records_written / self.duration_seconds if self.duration_seconds else 0.0

    @property
    def query_throughput(self) -> float:
        """Statistical queries per second of wall-clock run time."""
        return self.queries_executed / self.duration_seconds if self.duration_seconds else 0.0

    def as_row(self) -> Dict[str, object]:
        return {
            "label": self.label,
            "ingest_records_per_s": round(self.ingest_throughput, 1),
            "query_ops_per_s": round(self.query_throughput, 1),
            "ingest_p50_ms": round(self.ingest_latency.p50_ms, 3),
            "ingest_p95_ms": round(self.ingest_latency.p95_ms, 3),
            "query_p50_ms": round(self.query_latency.p50_ms, 3),
            "query_p95_ms": round(self.query_latency.p95_ms, 3),
        }


@dataclass
class LoadGenerator:
    """Replays a read/write mix against a TimeCrypt-shaped store.

    Parameters
    ----------
    store:
        Any object with ``insert_record`` / ``flush`` / ``get_stat_range``.
    stream_records:
        Per-stream record batches (timestamp-ordered).
    read_write_ratio:
        Statistical queries issued per chunk ingest (the paper uses 4).
    chunk_interval:
        The streams' Δ, used to batch ingest latency measurements per chunk
        and to pick query ranges.
    query_operators:
        Operators evaluated by each statistical query.
    seed:
        RNG seed for query-range selection.
    ingest_batch_size:
        Client-side batch size in records.  At the default of 1 every record
        goes through ``insert_record`` (the paper's per-record replay); above
        1 the generator groups records and delivers each group with one
        ``insert_records`` call, exercising the bulk encrypt + coalesced
        storage write path end to end.  Queries are still issued at the
        configured read:write ratio per completed chunk.
    """

    store: TimeSeriesStoreLike
    stream_records: Dict[str, List[Tuple[int, float]]]
    read_write_ratio: int = 4
    chunk_interval: int = 10_000
    query_operators: Sequence[str] = ("sum", "count", "mean")
    seed: int = 3
    ingest_batch_size: int = 1
    on_query_error: Optional[Callable[[Exception], None]] = None
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.ingest_batch_size < 1:
            raise ValueError("ingest_batch_size must be at least 1")
        self._rng = random.Random(self.seed)

    def run(self, label: str = "run") -> LoadReport:
        """Replay every stream's records, issuing queries after each chunk."""
        ingest_latencies: List[float] = []
        query_latencies: List[float] = []
        records_written = 0
        chunks_flushed = 0
        queries = 0
        batched = self.ingest_batch_size > 1 and hasattr(self.store, "insert_records")
        run_start = time.perf_counter()
        for uuid, records in self.stream_records.items():
            if not records:
                continue
            if batched:
                written, flushed, issued = self._replay_batched(
                    uuid, records, ingest_latencies, query_latencies
                )
                records_written += written
                chunks_flushed += flushed
                queries += issued
                continue
            first_ts = records[0][0]
            chunk_boundary = first_ts + self.chunk_interval
            chunk_started = time.perf_counter()
            for timestamp, value in records:
                # Inserting the first record past the boundary seals the previous
                # chunk on the server, so queries are issued after that insert.
                crossed_boundary = timestamp >= chunk_boundary
                self.store.insert_record(uuid, timestamp, value)
                records_written += 1
                if crossed_boundary:
                    ingest_latencies.append(time.perf_counter() - chunk_started)
                    chunks_flushed += 1
                    queries += self._issue_queries(uuid, first_ts, timestamp, query_latencies)
                    while chunk_boundary <= timestamp:
                        chunk_boundary += self.chunk_interval
                    chunk_started = time.perf_counter()
            self.store.flush(uuid)
            ingest_latencies.append(time.perf_counter() - chunk_started)
            chunks_flushed += 1
            queries += self._issue_queries(uuid, first_ts, records[-1][0] + 1, query_latencies)
        duration = time.perf_counter() - run_start
        return LoadReport(
            label=label,
            duration_seconds=duration,
            records_written=records_written,
            chunks_flushed=chunks_flushed,
            queries_executed=queries,
            ingest_latency=LatencySummary.of(ingest_latencies),
            query_latency=LatencySummary.of(query_latencies),
        )

    def _replay_batched(
        self,
        uuid: str,
        records: List[Tuple[int, float]],
        ingest_latencies: List[float],
        query_latencies: List[float],
    ) -> Tuple[int, int, int]:
        """Replay one stream through ``insert_records`` in client-side batches.

        Ingest latency is measured per delivered batch; statistical queries
        are still issued at ``read_write_ratio`` per boundary-crossing record
        — the same events the scalar replay counts as chunk flushes — so the
        read:write mix and chunk totals match the scalar path even on
        streams with time gaps.
        """
        first_ts = records[0][0]
        chunk_boundary = first_ts + self.chunk_interval
        chunks_completed = 0
        queries = 0
        for offset in range(0, len(records), self.ingest_batch_size):
            batch = records[offset : offset + self.ingest_batch_size]
            began = time.perf_counter()
            self.store.insert_records(uuid, batch)
            ingest_latencies.append(time.perf_counter() - began)
            crossings = 0
            for timestamp, _value in batch:
                if timestamp >= chunk_boundary:
                    crossings += 1
                    while chunk_boundary <= timestamp:
                        chunk_boundary += self.chunk_interval
            chunks_completed += crossings
            for _ in range(crossings):
                queries += self._issue_queries(uuid, first_ts, batch[-1][0], query_latencies)
        self.store.flush(uuid)
        chunks_completed += 1  # the final flush seals the open chunk
        queries += self._issue_queries(uuid, first_ts, records[-1][0] + 1, query_latencies)
        return len(records), chunks_completed, queries

    def _issue_queries(
        self, uuid: str, first_ts: int, current_ts: int, query_latencies: List[float]
    ) -> int:
        """Issue the configured number of statistical queries over ingested data."""
        issued = 0
        available = current_ts - first_ts
        if available < self.chunk_interval:
            return 0
        for _ in range(self.read_write_ratio):
            span_chunks = self._rng.randint(1, max(1, available // self.chunk_interval))
            start = first_ts
            end = min(current_ts, start + span_chunks * self.chunk_interval)
            began = time.perf_counter()
            try:
                self.store.get_stat_range(uuid, start, end, operators=self.query_operators)
            except Exception as exc:  # pragma: no cover - depends on store wiring
                if self.on_query_error is not None:
                    self.on_query_error(exc)
                else:
                    raise
            query_latencies.append(time.perf_counter() - began)
            issued += 1
        return issued
