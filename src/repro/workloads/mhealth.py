"""The mHealth workload: a medical-grade health-monitoring wearable (paper §6).

The evaluation models a Biovotion-class wearable that reports 12 different
metrics at 50 Hz with a 10-second chunk interval (≈500 points per chunk).
The generator produces deterministic, physiologically plausible synthetic
series (heart rate, SpO₂, skin temperature, activity counts, ...) so that
benchmark runs are repeatable and statistics have a meaningful spread.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

from repro.timeseries.digest import DigestConfig, HistogramConfig
from repro.timeseries.point import DataPoint
from repro.timeseries.stream import StreamConfig

#: The 12 metrics the wearable reports, with (baseline, amplitude, noise, scale).
METRICS: Dict[str, Tuple[float, float, float, int]] = {
    "heart_rate": (72.0, 18.0, 2.5, 10),
    "heart_rate_variability": (55.0, 20.0, 5.0, 10),
    "spo2": (97.0, 1.5, 0.4, 10),
    "respiration_rate": (15.0, 4.0, 0.8, 10),
    "skin_temperature": (33.5, 1.2, 0.15, 100),
    "core_temperature": (36.8, 0.5, 0.05, 100),
    "blood_pulse_wave": (1.1, 0.4, 0.08, 1000),
    "activity_steps": (0.0, 40.0, 8.0, 1),
    "energy_expenditure": (1.3, 0.9, 0.2, 100),
    "galvanic_skin_response": (2.2, 1.4, 0.3, 100),
    "perfusion_index": (3.5, 1.8, 0.5, 100),
    "ambient_light": (250.0, 240.0, 60.0, 1),
}

#: Sampling rate of the wearable.
SAMPLE_HZ = 50
#: Chunk interval used in the paper's mHealth experiments (10 s).
CHUNK_INTERVAL_MS = 10_000


@dataclass
class MHealthWorkload:
    """Deterministic generator of wearable metric streams.

    Parameters
    ----------
    seed:
        RNG seed; identical seeds produce identical workloads.
    sample_hz:
        Measurements per second per metric (50 Hz in the paper).
    start_time:
        Epoch (ms) of the first sample.
    """

    seed: int = 7
    sample_hz: int = SAMPLE_HZ
    start_time: int = 0
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    # -- stream configuration ------------------------------------------------------

    @staticmethod
    def stream_config(metric: str, chunk_interval_ms: int = CHUNK_INTERVAL_MS) -> StreamConfig:
        """The per-metric stream configuration used by examples and benchmarks."""
        baseline, amplitude, _noise, scale = METRICS[metric]
        low = (baseline - 2.5 * amplitude) * scale
        high = (baseline + 2.5 * amplitude) * scale
        step = max(1.0, (high - low) / 8)
        boundaries = tuple(int(low + i * step) for i in range(1, 8))
        return StreamConfig(
            chunk_interval=chunk_interval_ms,
            value_scale=scale,
            compression="delta-zlib",
            digest=DigestConfig(histogram=HistogramConfig(boundaries=boundaries)),
        )

    @classmethod
    def metric_names(cls) -> List[str]:
        return list(METRICS)

    # -- sample generation -------------------------------------------------------------

    def _metric_value(self, metric: str, t_seconds: float, phase: float) -> float:
        baseline, amplitude, noise, _scale = METRICS[metric]
        # A slow circadian-style component plus a faster activity component.
        circadian = amplitude * 0.6 * math.sin(2 * math.pi * t_seconds / 3600.0 + phase)
        activity = amplitude * 0.4 * math.sin(2 * math.pi * t_seconds / 90.0 + 2 * phase)
        value = baseline + circadian + activity + self._rng.gauss(0.0, noise)
        return max(0.0, value)

    def records(self, metric: str, duration_seconds: int) -> Iterator[Tuple[int, float]]:
        """Yield ``(timestamp_ms, value)`` records for one metric."""
        if metric not in METRICS:
            raise KeyError(f"unknown mHealth metric '{metric}'")
        phase = self._rng.uniform(0, 2 * math.pi)
        interval_ms = 1000 // self.sample_hz
        num_samples = duration_seconds * self.sample_hz
        for index in range(num_samples):
            timestamp = self.start_time + index * interval_ms
            yield timestamp, self._metric_value(metric, index / self.sample_hz, phase)

    def points(self, metric: str, duration_seconds: int) -> List[DataPoint]:
        """Pre-encoded fixed-point data points for one metric."""
        scale = METRICS[metric][3]
        return [
            DataPoint(timestamp=timestamp, value=round(value * scale))
            for timestamp, value in self.records(metric, duration_seconds)
        ]

    def all_metrics(self, duration_seconds: int) -> Dict[str, List[Tuple[int, float]]]:
        """Records for every metric (the full 12-metric wearable)."""
        return {metric: list(self.records(metric, duration_seconds)) for metric in METRICS}

    # -- sizing helpers -----------------------------------------------------------------

    def records_per_chunk(self, chunk_interval_ms: int = CHUNK_INTERVAL_MS) -> int:
        return self.sample_hz * chunk_interval_ms // 1000

    def chunks_for_duration(self, duration_seconds: int, chunk_interval_ms: int = CHUNK_INTERVAL_MS) -> int:
        return (duration_seconds * 1000 + chunk_interval_ms - 1) // chunk_interval_ms
