"""Shared fixtures for the test suite."""

from __future__ import annotations

import os
import random

import pytest

from repro import (
    DigestConfig,
    HistogramConfig,
    Principal,
    ServerEngine,
    StreamConfig,
    TimeCrypt,
)
from repro.crypto.keytree import KeyDerivationTree
from repro.storage.memory import MemoryStore


@pytest.fixture(scope="session", autouse=True)
def _lockwatch():
    """Opt-in runtime lock-order watchdog for the whole session.

    ``REPRO_LOCKWATCH=1 pytest …`` instruments every lock the repro
    modules construct from here on and fails the session on any
    lock-order inversion observed anywhere in the run (blocking-call
    observations are recorded but not fatal — the static analyzer's
    REPRO004 waivers document the intentional ones).
    """
    from repro.analysis.lockwatch import install_from_env

    watcher = install_from_env(os.environ.get("REPRO_LOCKWATCH"))
    yield watcher
    if watcher is not None:
        watcher.uninstall()
        assert not watcher.ordering_violations, watcher.report()


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG for value generation in tests."""
    return random.Random(1234)


@pytest.fixture
def small_config() -> StreamConfig:
    """A small, fast stream configuration: 1 s chunks, tiny key tree, 4-ary index."""
    return StreamConfig(
        chunk_interval=1_000,
        key_tree_height=16,
        index_fanout=4,
        digest=DigestConfig(histogram=HistogramConfig(boundaries=(25, 50, 75))),
    )


@pytest.fixture
def key_tree() -> KeyDerivationTree:
    """A deterministic key-derivation tree for crypto tests."""
    return KeyDerivationTree(seed=bytes(range(16)), height=16, prg="blake2")


@pytest.fixture
def memory_store() -> MemoryStore:
    return MemoryStore()


@pytest.fixture
def server() -> ServerEngine:
    return ServerEngine()


@pytest.fixture
def owner(server: ServerEngine) -> TimeCrypt:
    return TimeCrypt(server=server, owner_id="alice")


@pytest.fixture
def populated_stream(owner: TimeCrypt, small_config: StreamConfig):
    """A stream with 60 s of one-per-100ms data; returns (owner, uuid, records)."""
    uuid = owner.create_stream(metric="heart-rate", config=small_config)
    records = [(t, 50 + (t // 1_000) % 40) for t in range(0, 60_000, 100)]
    owner.insert_records(uuid, records)
    owner.flush(uuid)
    return owner, uuid, records


def make_principal(owner: TimeCrypt, name: str) -> Principal:
    """Create and register a principal with the owner's identity provider."""
    principal = Principal.create(name)
    owner.register_principal(principal)
    return principal
