"""REPRO004 bad fixture: AB/BA lock inversion and I/O under a lock."""

import threading


class Pair:
    def __init__(self):
        self.lock_a = threading.Lock()
        self.lock_b = threading.Lock()

    def forward(self):
        with self.lock_a:
            with self.lock_b:
                return 1

    def backward(self):
        with self.lock_b:
            with self.lock_a:  # opposite nesting order: cycle
                return 2

    def send_locked(self, sock, payload):
        with self.lock_a:
            sock.sendall(payload)  # socket I/O while holding a lock

    def wait_locked(self, future):
        with self.lock_b:
            return future.result()  # pool wait while holding a lock
