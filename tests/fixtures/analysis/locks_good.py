"""REPRO004 good fixture: consistent order, I/O outside locks."""

import threading


class Pair:
    def __init__(self):
        self.lock_a = threading.Lock()
        self.lock_b = threading.Lock()

    def forward(self):
        with self.lock_a:
            with self.lock_b:
                return 1

    def also_forward(self):
        with self.lock_a:
            with self.lock_b:  # same global order: no cycle
                return 2

    def send_unlocked(self, sock, payload):
        with self.lock_a:
            data = bytes(payload)
        sock.sendall(data)  # I/O after the lock is dropped

    def wait_unlocked(self, future):
        with self.lock_b:
            pending = future
        return pending.result()
