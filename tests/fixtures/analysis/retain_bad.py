"""REPRO001 bad fixture: attachment views stored without retain()."""


class Dispatcher:
    def __init__(self, store):
        self.store = store
        self._last_value = None
        self._seen_keys = []

    def _op_kv_put(self, request):
        key = request.attachments[0]
        value = request.attachments[1]
        self._last_value = value  # stored into an attribute: outlives the request
        self._seen_keys.append(key)  # self-owned container
        self.store.put(key, value)  # storage call persists the view
        return {"ok": True}

    def _op_kv_multi_put(self, request):
        pairs = [
            (key, value)
            for key, value in zip(request.attachments[0::2], request.attachments[1::2])
        ]
        self.store.multi_put(pairs)  # comprehension carries the taint through
        return {"count": len(pairs)}
