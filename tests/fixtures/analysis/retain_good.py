"""REPRO001 good fixture: every stored view goes through retain()."""

from repro.net.messages import retain


class Dispatcher:
    def __init__(self, store):
        self.store = store
        self._last_value = None
        self._seen_keys = []

    def _op_kv_put(self, request):
        key = retain(request.attachments[0])
        value = retain(request.attachments[1])
        self._last_value = value
        self._seen_keys.append(key)
        self.store.put(key, value)
        return {"ok": True}

    def _op_kv_multi_put(self, request):
        pairs = [
            (retain(key), retain(value))
            for key, value in zip(request.attachments[0::2], request.attachments[1::2])
        ]
        self.store.multi_put(pairs)
        # A request-local response list is not a sink: it dies with the call.
        response = []
        response.append(request.attachments[0])
        return {"count": len(pairs), "echo": response}
