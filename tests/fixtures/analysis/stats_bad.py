"""REPRO005 bad fixture: discarded registry key, unregistered stats struct."""

from repro.obs.metrics import REGISTRY


class PoolStats:
    submitted: int = 0
    completed: int = 0


class Pool:
    def __init__(self):
        self.stats = PoolStats()  # never registered anywhere in this module
        REGISTRY.register("pool.queue", object())  # key discarded, and no close()
