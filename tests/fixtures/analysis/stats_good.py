"""REPRO005 good fixture: key kept, unregistered on close, stats registered."""

from repro.obs.metrics import REGISTRY


class PoolStats:
    submitted: int = 0
    completed: int = 0


class Pool:
    def __init__(self):
        self.stats = PoolStats()
        self._metrics_key = REGISTRY.register("pool.queue", self.stats)

    def close(self):
        if self._metrics_key is not None:
            REGISTRY.unregister(self._metrics_key)
            self._metrics_key = None
