"""REPRO002 bad fixture: telemetry referencing key material."""

import logging

logger = logging.getLogger(__name__)
SPANS = None  # stands in for the span collector


def derive_and_log(master_key, record):
    derived_key = master_key + record
    logger.debug("derived %r for chunk", derived_key)  # leaks key material
    SPANS.record({"op": "derive", "master_key": master_key})  # span payload leak
    return derived_key
