"""REPRO002 good fixture: telemetry records op names, sizes, timings."""

import logging

logger = logging.getLogger(__name__)
SPANS = None  # stands in for the span collector


def derive_and_log(master_key, record):
    derived_key = master_key + record
    logger.debug("derived material for chunk (%d bytes)", len(record))
    SPANS.record({"op": "derive", "bytes": len(record), "duration_ms": 0.1})
    return derived_key
