"""REPRO003 bad fixture: ragged operation inventory and untyped raises."""

KV_OPERATIONS = ("kv_get", "kv_put")

OPERATIONS = (
    "ping",
    "fetch",
    "push",
    "orphan",  # declared, no handler anywhere
) + KV_OPERATIONS

BULK_OPERATIONS = frozenset({"push", "fetch", "kv_put"})

INTERACTIVE_OPERATIONS = frozenset({"ping", "fetch", "kv_get"})  # fetch in both
# "orphan" is additionally in neither class.


class Dispatcher:
    def _op_ping(self, request):
        if request is None:
            raise ValueError("bad request")  # builtin escapes to the wire
        return {"pong": True}

    def _op_fetch(self, request):
        return {}

    def _op_push(self, request):
        return {}

    def _op_kv_get(self, request):
        return {}

    def _op_kv_put(self, request):
        return {}

    def _op_ghost(self, request):  # handler for an undeclared op
        return {}
