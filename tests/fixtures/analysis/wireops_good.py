"""REPRO003 good fixture: total, disjoint inventory; typed raises."""


class FixtureError(Exception):
    """A typed wire error."""


KV_OPERATIONS = ("kv_get", "kv_put")

OPERATIONS = (
    "ping",
    "fetch",
    "push",
) + KV_OPERATIONS

BULK_OPERATIONS = frozenset({"push", "kv_put"})

INTERACTIVE_OPERATIONS = frozenset({"ping", "fetch", "kv_get"})


class Dispatcher:
    def _op_ping(self, request):
        if request is None:
            raise FixtureError("bad request")
        return {"pong": True}

    def _op_fetch(self, request):
        return {}

    def _op_push(self, request):
        return {}

    def _op_kv_get(self, request):
        return {}

    def _op_kv_put(self, request):
        return {}
