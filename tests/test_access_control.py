"""Tests for access control: policies, grants, resolution restriction, revocation."""

from __future__ import annotations

import pytest

from repro.access.grants import GrantManager
from repro.access.keystore import TokenStore
from repro.access.policy import AccessPolicy, OPEN_END, Resolution, open_ended
from repro.access.principal import IdentityProvider, Principal
from repro.access.resolution import ResolutionConsumerKeystream, ResolutionKeystream
from repro.access.tokens import AccessToken
from repro.crypto.heac import HEACCipher, aggregate
from repro.crypto.keytree import KeyDerivationTree
from repro.exceptions import (
    AccessDeniedError,
    ConfigurationError,
    DecryptionError,
    KeyDerivationError,
    ProtocolError,
)
from repro.timeseries.stream import StreamConfig
from repro.util.timeutil import TimeRange

SEED = b"\x21" * 16


@pytest.fixture
def key_tree():
    return KeyDerivationTree(seed=SEED, height=16, prg="blake2")


@pytest.fixture
def stream_config():
    return StreamConfig(chunk_interval=1_000, key_tree_height=16, index_fanout=4)


@pytest.fixture
def identity_provider():
    return IdentityProvider()


@pytest.fixture
def grant_manager(key_tree, stream_config, identity_provider):
    return GrantManager(
        stream_uuid="stream-1",
        config=stream_config,
        key_tree=key_tree,
        identity_provider=identity_provider,
        token_store=TokenStore(),
    )


class TestResolution:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Resolution(0)

    def test_alignment_helpers(self):
        resolution = Resolution(6)
        assert resolution.aligned(12)
        assert not resolution.aligned(13)
        assert resolution.align_down(13) == 12
        assert resolution.align_up(13) == 18

    def test_from_interval(self):
        assert Resolution.from_interval(60_000, 10_000).chunks == 6
        with pytest.raises(ConfigurationError):
            Resolution.from_interval(15_000, 10_000)
        with pytest.raises(ConfigurationError):
            Resolution.from_interval(0, 10_000)


class TestAccessPolicy:
    def test_resolution_check(self):
        policy = AccessPolicy("s", "p", TimeRange(0, 100), Resolution(6))
        assert policy.allows_resolution(6)
        assert policy.allows_resolution(12)
        assert not policy.allows_resolution(3)
        assert not policy.allows_resolution(0)

    def test_time_range_check(self):
        policy = AccessPolicy("s", "p", TimeRange(10, 100))
        assert policy.allows_time_range(TimeRange(10, 50))
        assert not policy.allows_time_range(TimeRange(0, 50))

    def test_open_ended(self):
        policy = open_ended("s", "p", 500)
        assert policy.is_open_ended
        assert policy.time_range.end == OPEN_END

    def test_restrict_end(self):
        policy = AccessPolicy("s", "p", TimeRange(0, 100))
        clipped = policy.restrict_end(40)
        assert clipped.time_range == TimeRange(0, 40)
        assert policy.restrict_end(200) is policy
        assert policy.restrict_end(-5).time_range.is_empty()


class TestPrincipalsAndIdentity:
    def test_registration_and_lookup(self, identity_provider):
        alice = Principal.create("alice")
        identity_provider.register(alice)
        assert identity_provider.is_registered("alice")
        assert identity_provider.public_key_of("alice") == alice.public_key

    def test_unknown_principal(self, identity_provider):
        with pytest.raises(AccessDeniedError):
            identity_provider.public_key_of("nobody")

    def test_encrypt_for_roundtrip(self, identity_provider):
        bob = Principal.create("bob")
        identity_provider.register(bob)
        blob = identity_provider.encrypt_for("bob", b"hello", b"ctx")
        assert bob.decrypt_envelope(blob, b"ctx") == b"hello"

    def test_unregister(self, identity_provider):
        carol = Principal.create("carol")
        identity_provider.register(carol)
        identity_provider.unregister("carol")
        assert not identity_provider.is_registered("carol")


class TestAccessTokenSerialization:
    def test_full_resolution_roundtrip(self, key_tree):
        token = AccessToken(
            stream_uuid="s",
            principal_id="p",
            time_range=TimeRange(0, 1000),
            window_start=0,
            window_end=10,
            resolution_chunks=1,
            prg="blake2",
            tree_tokens=key_tree.tokens_for_range(0, 11),
        )
        decoded = AccessToken.from_bytes(token.to_bytes())
        assert decoded == token

    def test_restricted_resolution_roundtrip(self, key_tree):
        from repro.crypto.keyregression import DualKeyRegression

        regression = DualKeyRegression(length=64)
        token = AccessToken(
            stream_uuid="s",
            principal_id="p",
            time_range=TimeRange(0, 1000),
            window_start=0,
            window_end=60,
            resolution_chunks=6,
            prg="blake2",
            tree_tokens=[],
            regression_token=regression.share(0, 10),
        )
        decoded = AccessToken.from_bytes(token.to_bytes())
        assert decoded == token
        assert not decoded.is_full_resolution

    def test_malformed_token_rejected(self):
        with pytest.raises(ProtocolError):
            AccessToken.from_bytes(b"not json at all")
        with pytest.raises(ProtocolError):
            AccessToken.from_bytes(b"{}")


class TestTokenStore:
    def test_grant_lifecycle(self):
        store = TokenStore()
        assert store.put_grant("s", "p", b"sealed-1") == 0
        assert store.put_grant("s", "p", b"sealed-2") == 1
        assert store.grants_for("s", "p") == [b"sealed-1", b"sealed-2"]
        assert store.latest_grant("s", "p") == b"sealed-2"
        assert store.principals_with_grants("s") == ["p"]
        assert store.delete_grants("s", "p") == 2
        with pytest.raises(AccessDeniedError):
            store.latest_grant("s", "p")

    def test_envelope_storage(self):
        store = TokenStore()
        store.put_envelopes("s", 6, {0: b"e0", 6: b"e6", 12: b"e12"})
        assert store.get_envelope("s", 6, 6) == b"e6"
        assert store.envelopes_for_range("s", 6, 0, 6) == {0: b"e0", 6: b"e6"}
        assert store.envelopes_for_range("s", 3, 0, 100) == {}


class TestResolutionKeystream:
    def test_envelope_alignment_enforced(self, key_tree):
        keystream = ResolutionKeystream("s", 6, key_tree, length=256)
        with pytest.raises(KeyDerivationError):
            keystream.make_envelope(7)

    def test_consumer_recovers_outer_keys(self, key_tree):
        keystream = ResolutionKeystream("s", 6, key_tree, length=256)
        envelopes = keystream.make_envelopes(0, 36)
        share = keystream.share(0, 36)
        consumer = ResolutionConsumerKeystream(share, envelopes)
        for window in (0, 6, 12, 36):
            assert consumer.leaf(window) == key_tree.leaf(window)

    def test_consumer_cannot_get_inner_keys(self, key_tree):
        keystream = ResolutionKeystream("s", 6, key_tree, length=256)
        consumer = ResolutionConsumerKeystream(
            keystream.share(0, 36), keystream.make_envelopes(0, 36)
        )
        with pytest.raises(KeyDerivationError):
            consumer.leaf(3)

    def test_consumer_missing_envelope_denied(self, key_tree):
        keystream = ResolutionKeystream("s", 6, key_tree, length=256)
        consumer = ResolutionConsumerKeystream(keystream.share(0, 36), {})
        with pytest.raises(AccessDeniedError):
            consumer.leaf(6)

    def test_restricted_consumer_decrypts_only_aligned_aggregates(self, key_tree):
        owner_cipher = HEACCipher(key_tree)
        values = list(range(1, 13))
        ciphertexts = [owner_cipher.encrypt(v, i) for i, v in enumerate(values)]
        keystream = ResolutionKeystream("s", 6, key_tree, length=256)
        consumer = ResolutionConsumerKeystream(
            keystream.share(0, 12), keystream.make_envelopes(0, 12)
        )
        consumer_cipher = HEACCipher(consumer)
        aligned = aggregate(ciphertexts[0:6])
        assert consumer_cipher.decrypt(aligned) == sum(values[0:6])
        full = aggregate(ciphertexts)
        assert consumer_cipher.decrypt(full) == sum(values)
        unaligned = aggregate(ciphertexts[0:3])
        with pytest.raises((DecryptionError, KeyDerivationError)):
            consumer_cipher.decrypt(unaligned)


class TestGrantManager:
    def _register(self, grant_manager, name):
        principal = Principal.create(name)
        grant_manager.identity_provider.register(principal)
        return principal

    def test_full_resolution_grant_roundtrip(self, grant_manager, key_tree):
        principal = self._register(grant_manager, "doc")
        policy = AccessPolicy("stream-1", "doc", TimeRange(2_000, 10_000))
        grant_manager.grant(policy)
        sealed = grant_manager.token_store.latest_grant("stream-1", "doc")
        token = AccessToken.from_bytes(
            principal.decrypt_envelope(sealed, context=b"stream-1")
        )
        assert token.window_start == 2 and token.window_end == 10
        # The shared tree tokens cover windows 2..10 inclusive (the +1 outer key).
        from repro.crypto.keytree import DerivedKeystream

        keystream = DerivedKeystream(token.tree_tokens, prg=token.prg)
        assert keystream.can_derive_range(2, 11)
        assert not keystream.can_derive(1)

    def test_restricted_grant_produces_envelopes(self, grant_manager):
        self._register(grant_manager, "coach")
        policy = AccessPolicy("stream-1", "coach", TimeRange(0, 60_000), Resolution(6))
        grant_manager.grant(policy)
        envelopes = grant_manager.token_store.envelopes_for_range("stream-1", 6, 0, 60)
        assert set(envelopes) == {0, 6, 12, 18, 24, 30, 36, 42, 48, 54, 60}

    def test_grant_for_wrong_stream_rejected(self, grant_manager):
        self._register(grant_manager, "doc")
        with pytest.raises(ConfigurationError):
            grant_manager.grant(AccessPolicy("other", "doc", TimeRange(0, 1000)))

    def test_grant_before_epoch_rejected(self, grant_manager, stream_config):
        self._register(grant_manager, "doc")
        policy = AccessPolicy(
            "stream-1", "doc", TimeRange(stream_config.start_time - 10, 1000)
        )
        with pytest.raises(ConfigurationError):
            grant_manager.grant(policy)

    def test_unregistered_principal_rejected(self, grant_manager):
        with pytest.raises(AccessDeniedError):
            grant_manager.grant(AccessPolicy("stream-1", "ghost", TimeRange(0, 1000)))

    def test_open_ended_grant(self, grant_manager):
        self._register(grant_manager, "doc")
        grant = grant_manager.grant(open_ended("stream-1", "doc", 0))
        assert grant.policy.is_open_ended

    def test_revocation_clips_grants(self, grant_manager):
        self._register(grant_manager, "doc")
        grant_manager.grant(AccessPolicy("stream-1", "doc", TimeRange(0, 100_000)))
        modified = grant_manager.revoke("doc", 10_000)
        assert len(modified) == 1
        active = grant_manager.active_policy("doc")
        assert active is not None and active.time_range.end == 10_000

    def test_revoking_unknown_principal(self, grant_manager):
        with pytest.raises(AccessDeniedError):
            grant_manager.revoke("nobody", 0)

    def test_revocation_leaves_expired_grants_alone(self, grant_manager):
        self._register(grant_manager, "doc")
        grant_manager.grant(AccessPolicy("stream-1", "doc", TimeRange(0, 5_000)))
        assert grant_manager.revoke("doc", 10_000) == []
