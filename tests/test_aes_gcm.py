"""Tests for the pure-Python AES block cipher and AES-GCM."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import AES
from repro.crypto.gcm import AesGcm, aead_decrypt, aead_encrypt
from repro.exceptions import IntegrityError


class TestAESBlockCipher:
    # FIPS-197 appendix C vectors.
    PLAINTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")

    def test_fips_aes128_vector(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        expected = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
        assert AES(key).encrypt_block(self.PLAINTEXT) == expected
        assert AES(key).decrypt_block(expected) == self.PLAINTEXT

    def test_fips_aes192_vector(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f1011121314151617")
        expected = bytes.fromhex("dda97ca4864cdfe06eaf70a0ec0d7191")
        assert AES(key).encrypt_block(self.PLAINTEXT) == expected

    def test_fips_aes256_vector(self):
        key = bytes.fromhex(
            "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"
        )
        expected = bytes.fromhex("8ea2b7ca516745bfeafc49904b496089")
        assert AES(key).encrypt_block(self.PLAINTEXT) == expected
        assert AES(key).decrypt_block(expected) == self.PLAINTEXT

    def test_invalid_key_length(self):
        with pytest.raises(ValueError):
            AES(b"short")

    def test_invalid_block_length(self):
        cipher = AES(b"0" * 16)
        with pytest.raises(ValueError):
            cipher.encrypt_block(b"too-short")
        with pytest.raises(ValueError):
            cipher.decrypt_block(b"x" * 17)

    @given(st.binary(min_size=16, max_size=16), st.binary(min_size=16, max_size=16))
    @settings(max_examples=20, deadline=None)
    def test_encrypt_decrypt_roundtrip(self, key, block):
        cipher = AES(key)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


class TestAesGcm:
    # NIST GCM test case 4 (AES-128, 96-bit IV, with AAD).
    KEY = bytes.fromhex("feffe9928665731c6d6a8f9467308308")
    IV = bytes.fromhex("cafebabefacedbaddecaf888")
    AAD = bytes.fromhex("feedfacedeadbeeffeedfacedeadbeefabaddad2")
    PLAINTEXT = bytes.fromhex(
        "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
        "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39"
    )
    CIPHERTEXT = bytes.fromhex(
        "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e"
        "21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091"
    )
    TAG = bytes.fromhex("5bc94fbc3221a5db94fae95ae7121a47")

    def test_nist_vector_encrypt(self):
        out = AesGcm(self.KEY).encrypt(self.IV, self.PLAINTEXT, self.AAD)
        assert out[:-16] == self.CIPHERTEXT
        assert out[-16:] == self.TAG

    def test_nist_vector_decrypt(self):
        out = AesGcm(self.KEY).decrypt(self.IV, self.CIPHERTEXT + self.TAG, self.AAD)
        assert out == self.PLAINTEXT

    def test_empty_plaintext_nist_case1(self):
        key = bytes(16)
        iv = bytes(12)
        out = AesGcm(key).encrypt(iv, b"", b"")
        assert out.hex() == "58e2fccefa7e3061367f1d57a4e7455a"

    def test_tamper_detection_ciphertext(self):
        gcm = AesGcm(self.KEY)
        blob = bytearray(gcm.encrypt(self.IV, self.PLAINTEXT, self.AAD))
        blob[0] ^= 1
        with pytest.raises(IntegrityError):
            gcm.decrypt(self.IV, bytes(blob), self.AAD)

    def test_tamper_detection_aad(self):
        gcm = AesGcm(self.KEY)
        blob = gcm.encrypt(self.IV, self.PLAINTEXT, self.AAD)
        with pytest.raises(IntegrityError):
            gcm.decrypt(self.IV, blob, self.AAD + b"x")

    def test_short_ciphertext_rejected(self):
        with pytest.raises(IntegrityError):
            AesGcm(self.KEY).decrypt(self.IV, b"short")


class TestAeadHelpers:
    def test_roundtrip_native_backend(self):
        key = b"k" * 16
        blob = aead_encrypt(key, b"payload", b"aad")
        assert aead_decrypt(key, blob, b"aad") == b"payload"

    def test_roundtrip_pure_python(self):
        key = b"k" * 16
        blob = aead_encrypt(key, b"payload", b"aad", force_pure_python=True)
        assert aead_decrypt(key, blob, b"aad", force_pure_python=True) == b"payload"

    def test_cross_backend_interoperability(self):
        key = b"q" * 16
        blob_pure = aead_encrypt(key, b"data", b"ctx", force_pure_python=True)
        assert aead_decrypt(key, blob_pure, b"ctx") == b"data"
        blob_native = aead_encrypt(key, b"data", b"ctx")
        assert aead_decrypt(key, blob_native, b"ctx", force_pure_python=True) == b"data"

    def test_wrong_key_fails(self):
        blob = aead_encrypt(b"a" * 16, b"data")
        with pytest.raises(IntegrityError):
            aead_decrypt(b"b" * 16, blob)

    def test_wrong_aad_fails(self):
        blob = aead_encrypt(b"a" * 16, b"data", b"aad1")
        with pytest.raises(IntegrityError):
            aead_decrypt(b"a" * 16, blob, b"aad2")

    def test_truncated_blob_rejected(self):
        with pytest.raises(IntegrityError):
            aead_decrypt(b"a" * 16, b"tiny")

    def test_invalid_nonce_length(self):
        with pytest.raises(ValueError):
            aead_encrypt(b"a" * 16, b"data", nonce=b"short")

    @given(st.binary(max_size=300), st.binary(max_size=40))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, plaintext, aad):
        key = b"p" * 16
        assert aead_decrypt(key, aead_encrypt(key, plaintext, aad), aad) == plaintext
