"""Self-tests for the static analyzer: rules, waivers, baseline, CLI."""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.core import load_baseline, run_analysis, write_baseline
from repro.analysis.rules import all_rules, locks, retain, stats, telemetry, wireops

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "analysis"


def _run(rule, fixture_name, root=REPO_ROOT, **kwargs):
    return run_analysis([FIXTURES / fixture_name], [rule], root=root, **kwargs)


# -- the five rules fire on their bad fixture and stay quiet on the good one --


def test_repro001_fires_on_unretained_stores():
    result = _run(retain.RULE, "retain_bad.py")
    assert len(result.findings) >= 4
    assert {finding.rule for finding in result.findings} == {"REPRO001"}
    messages = " | ".join(finding.message for finding in result.findings)
    assert "self._last_value" in messages
    assert "storage call .put()" in messages
    assert "storage call .multi_put()" in messages
    assert "container .append()" in messages


def test_repro001_clean_on_retained_stores():
    assert _run(retain.RULE, "retain_good.py").findings == []


def test_repro002_fires_on_key_material_telemetry():
    result = _run(telemetry.RULE, "telemetry_bad.py")
    assert len(result.findings) == 2
    kinds = sorted(finding.message.split(" records")[0] for finding in result.findings)
    assert kinds == ["log call", "span record"]


def test_repro002_clean_on_size_and_op_telemetry():
    assert _run(telemetry.RULE, "telemetry_good.py").findings == []


def test_repro003_fires_on_ragged_inventory():
    result = _run(wireops.RULE, "wireops_bad.py")
    messages = " | ".join(finding.message for finding in result.findings)
    assert "'orphan' is declared but no dispatcher defines _op_orphan" in messages
    assert "_op_ghost does not correspond" in messages
    assert "'fetch' is classified both bulk and interactive" in messages
    assert "'orphan' is in neither" in messages
    assert "raises builtin ValueError" in messages


def test_repro003_clean_on_total_disjoint_inventory():
    assert _run(wireops.RULE, "wireops_good.py").findings == []


def test_repro004_fires_on_inversion_and_locked_io():
    result = _run(locks.RULE, "locks_bad.py")
    messages = " | ".join(finding.message for finding in result.findings)
    assert "lock-order cycle" in messages
    assert "Pair.lock_a" in messages and "Pair.lock_b" in messages
    assert "sock.sendall()" in messages
    assert "future.result()" in messages


def test_repro004_clean_on_consistent_order():
    assert _run(locks.RULE, "locks_good.py").findings == []


def test_repro005_fires_on_leaky_registration():
    result = _run(stats.RULE, "stats_bad.py")
    messages = " | ".join(finding.message for finding in result.findings)
    assert "discards the registry key" in messages
    assert "no close/stop method calls REGISTRY.unregister" in messages
    assert "Pool.stats stats struct is never registered" in messages


def test_repro005_clean_on_kept_key_and_close():
    assert _run(stats.RULE, "stats_good.py").findings == []


# -- waivers -------------------------------------------------------------------


def _leaky(tmp_path: Path, comment: str = "", above: str = "") -> Path:
    source = (
        "import logging\n"
        "logger = logging.getLogger(__name__)\n"
        "def f(master_key):\n"
        f"{above}"
        f"    logger.info('derived %r', master_key){comment}\n"
    )
    target = tmp_path / "leaky.py"
    target.write_text(source, encoding="utf-8")
    return target


def test_waiver_on_same_line_suppresses(tmp_path):
    target = _leaky(tmp_path, comment="  # repro: allow[REPRO002] test-only fixture value")
    result = run_analysis([target], [telemetry.RULE], root=tmp_path)
    assert result.findings == []
    assert len(result.waived) == 1


def test_waiver_on_line_above_suppresses(tmp_path):
    target = _leaky(tmp_path, above="    # repro: allow[REPRO002] test-only fixture value\n")
    result = run_analysis([target], [telemetry.RULE], root=tmp_path)
    assert result.findings == []
    assert len(result.waived) == 1


def test_waiver_without_justification_is_flagged(tmp_path):
    target = _leaky(tmp_path, comment="  # repro: allow[REPRO002]")
    result = run_analysis([target], [telemetry.RULE], root=tmp_path)
    assert result.findings == []  # it still suppresses…
    assert any("no justification" in finding.message for finding in result.waiver_findings)


def test_malformed_waiver_is_flagged_and_does_not_suppress(tmp_path):
    target = _leaky(tmp_path, comment="  # repro: allow REPRO002 forgot the brackets")
    result = run_analysis([target], [telemetry.RULE], root=tmp_path)
    assert len(result.findings) == 1  # …a malformed one does not
    assert any("malformed waiver" in finding.message for finding in result.waiver_findings)


def test_unknown_rule_waiver_is_flagged(tmp_path):
    target = _leaky(tmp_path, comment="  # repro: allow[REPRO099] no such rule")
    result = run_analysis([target], [telemetry.RULE], root=tmp_path)
    assert any("unknown rule" in finding.message for finding in result.waiver_findings)


def test_unused_waiver_flagged_only_in_strict(tmp_path):
    target = tmp_path / "clean.py"
    target.write_text(
        "x = 1  # repro: allow[REPRO002] nothing here fires\n", encoding="utf-8"
    )
    relaxed = run_analysis([target], [telemetry.RULE], root=tmp_path)
    assert relaxed.waiver_findings == []
    strict = run_analysis([target], [telemetry.RULE], root=tmp_path, strict=True)
    assert any("unused waiver" in finding.message for finding in strict.waiver_findings)


def test_docstring_waiver_examples_are_not_waivers(tmp_path):
    target = tmp_path / "doc.py"
    target.write_text(
        '"""Docs: suppress with `# repro: allow[REPRO002] why`."""\n'
        "import logging\n"
        "logger = logging.getLogger(__name__)\n"
        "def f(master_key):\n"
        "    logger.info('%r', master_key)\n",
        encoding="utf-8",
    )
    result = run_analysis([target], [telemetry.RULE], root=tmp_path, strict=True)
    assert len(result.findings) == 1  # docstring text neither suppresses…
    assert result.waiver_findings == []  # …nor counts as a (mal)formed waiver


# -- baseline ------------------------------------------------------------------


def test_baseline_suppresses_known_fingerprints(tmp_path):
    target = _leaky(tmp_path)
    first = run_analysis([target], [telemetry.RULE], root=tmp_path)
    assert len(first.findings) == 1
    entry = {
        "rule": "REPRO002",
        "path": first.findings[0].path,
        "fingerprint": first.findings[0].fingerprint(),
        "reason": "known test leak, tracked elsewhere",
    }
    second = run_analysis([target], [telemetry.RULE], root=tmp_path, baseline=[entry])
    assert second.findings == []
    assert len(second.baselined) == 1
    assert second.stale_baseline == []


def test_stale_baseline_entry_fails_strict(tmp_path):
    target = tmp_path / "clean.py"
    target.write_text("x = 1\n", encoding="utf-8")
    stale = {"rule": "REPRO002", "path": "clean.py", "fingerprint": "deadbeef", "reason": "gone"}
    result = run_analysis([target], [telemetry.RULE], root=tmp_path, baseline=[stale], strict=True)
    assert result.failures(strict=False) == []
    assert any("stale baseline" in finding.message for finding in result.failures(strict=True))


def test_baseline_fingerprint_survives_line_moves(tmp_path):
    target = _leaky(tmp_path)
    before = run_analysis([target], [telemetry.RULE], root=tmp_path).findings[0]
    shifted = "# a new leading comment\n" + target.read_text(encoding="utf-8")
    target.write_text(shifted, encoding="utf-8")
    after = run_analysis([target], [telemetry.RULE], root=tmp_path).findings[0]
    assert before.line != after.line
    assert before.fingerprint() == after.fingerprint()


def test_written_baseline_requires_human_reasons(tmp_path):
    target = _leaky(tmp_path)
    result = run_analysis([target], [telemetry.RULE], root=tmp_path)
    baseline_path = tmp_path / "BASELINE.json"
    write_baseline(baseline_path, result.findings)
    entries, problems = load_baseline(baseline_path)
    assert len(entries) == 1
    assert any("carries no reason" in finding.message for finding in problems)


# -- CLI -----------------------------------------------------------------------


def test_cli_fails_on_findings_and_emits_json(tmp_path, capsys):
    from repro.analysis.__main__ import main

    target = _leaky(tmp_path)
    code = main(["--root", str(tmp_path), str(target), "--json"])
    captured = capsys.readouterr()
    assert code == 1
    payload = json.loads(captured.out)
    assert payload["summary"]["new"] >= 1
    assert payload["findings"][0]["rule"] == "REPRO002"


def test_cli_clean_run_exits_zero(tmp_path, capsys):
    from repro.analysis.__main__ import main

    target = tmp_path / "fine.py"
    target.write_text("x = 1\n", encoding="utf-8")
    code = main(["--root", str(tmp_path), str(target), "--strict"])
    captured = capsys.readouterr()
    assert code == 0
    assert captured.out.startswith("ok:")


# -- the repo itself stays clean under --strict --------------------------------


def test_repo_strict_run_is_clean():
    baseline_entries, baseline_problems = load_baseline(REPO_ROOT / "ANALYSIS_BASELINE.json")
    assert baseline_problems == []
    result = run_analysis(
        [REPO_ROOT / "src", REPO_ROOT / "tests", REPO_ROOT / "benchmarks"],
        all_rules(),
        root=REPO_ROOT,
        baseline=baseline_entries,
        strict=True,
    )
    assert result.failures(strict=True) == [], "\n".join(
        finding.render() for finding in result.failures(strict=True)
    )
