"""Batch/scalar equivalence: the batch fast paths must be bit-identical.

The batched APIs introduced for bulk ingest and series decryption —
``PRG.expand_many``, ``KeyDerivationTree.leaf_range`` /
``DerivedKeystream.leaf_range``, ``HEACCipher.encrypt_windows`` /
``decrypt_ranges``, ``AggregationIndex.append_many`` and the client/server
plumbing on top — are pure performance refactors.  These property-style tests
pin that down: for random ranges, batch splits, and token grants, the batch
path must produce byte-identical keys, ciphertexts, and stored index nodes to
the scalar path it replaces.
"""

from __future__ import annotations

import random
import struct

import pytest

from repro.core.plaintext import PlaintextTimeSeriesStore
from repro.crypto.heac import HEACCipher, aggregate
from repro.crypto.keytree import DerivedKeystream, KeyDerivationTree
from repro.crypto.prf import available_prgs, get_prg
from repro.exceptions import KeyDerivationError, QueryError
from repro.index.node import plaintext_combiner
from repro.index.tree import AggregationIndex
from repro.server.engine import ServerEngine
from repro.client.writer import StreamWriter
from repro.storage.memory import MemoryStore
from repro.timeseries.chunk import chunks_from_points
from repro.timeseries.point import DataPoint
from repro.timeseries.serialization import decode_encrypted_chunk
from repro.timeseries.stream import StreamConfig, StreamMetadata
from repro.util.encoding import encode_varint
from repro.util.timeutil import TimeRange


# ---------------------------------------------------------------------------
# PRG batch API
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("prg_name", available_prgs())
def test_expand_many_matches_expand(prg_name):
    prg = get_prg(prg_name)
    rng = random.Random(41)
    seeds = [bytes(rng.randrange(256) for _ in range(16)) for _ in range(17)]
    assert prg.expand_many(seeds) == [prg.expand(seed) for seed in seeds]
    # Repeat with overlapping seeds: cached cipher contexts must stay stable.
    again = seeds[5:] + seeds[:5]
    assert prg.expand_many(again) == [prg.expand(seed) for seed in again]


@pytest.mark.parametrize("prg_name", available_prgs())
def test_expand_rejects_bad_seed_even_with_cache(prg_name):
    prg = get_prg(prg_name)
    with pytest.raises(ValueError):
        prg.expand(b"short")
    with pytest.raises(ValueError):
        prg.expand_many([b"\x00" * 16, b"way-too-long" * 3])


# ---------------------------------------------------------------------------
# Key-tree batch derivation
# ---------------------------------------------------------------------------


def _batch_prgs():
    candidates = ("blake2", "sha256", "aes-ni", "aes-ni-fk")
    return [name for name in candidates if name in available_prgs()]


@pytest.mark.parametrize("prg_name", _batch_prgs())
@pytest.mark.parametrize("height", [1, 2, 7, 12])
def test_leaf_range_matches_scalar_leaves(prg_name, height):
    tree = KeyDerivationTree(seed=bytes(range(16)), height=height, prg=prg_name)
    rng = random.Random(height)
    num_keys = tree.num_keys
    ranges = [(0, num_keys), (0, 0), (num_keys, num_keys)]
    ranges += [sorted((rng.randrange(num_keys + 1), rng.randrange(num_keys + 1))) for _ in range(12)]
    for start, end in ranges:
        assert tree.leaf_range(start, end) == [tree.leaf(i) for i in range(start, end)]


def test_leaf_range_rejects_out_of_tree_ranges(key_tree):
    with pytest.raises(KeyDerivationError):
        key_tree.leaf_range(0, key_tree.num_keys + 1)
    with pytest.raises(KeyDerivationError):
        key_tree.leaf_range(-1, 4)
    with pytest.raises(KeyDerivationError):
        key_tree.leaf_range(9, 7)


def test_leaf_range_ignores_node_cache_configuration():
    cold = KeyDerivationTree(seed=b"s" * 16, height=10, prg="blake2", cache_levels=0)
    warm = KeyDerivationTree(seed=b"s" * 16, height=10, prg="blake2", cache_levels=10)
    assert cold.leaf_range(100, 700) == warm.leaf_range(100, 700)


def test_derived_keystream_leaf_range_across_token_boundaries(key_tree):
    """Ranges spanning several access tokens, including unaligned edges."""
    rng = random.Random(99)
    for _ in range(15):
        grant_start = rng.randrange(0, key_tree.num_keys - 2)
        grant_end = rng.randrange(grant_start + 1, key_tree.num_keys + 1)
        tokens = key_tree.tokens_for_range(grant_start, grant_end)
        keystream = DerivedKeystream(tokens, prg=key_tree.prg_name)
        start = rng.randrange(grant_start, grant_end)
        end = rng.randrange(start, grant_end + 1)
        assert keystream.leaf_range(start, end) == [
            keystream.leaf(i) for i in range(start, end)
        ]
        # The grant edges themselves are the interesting token boundaries.
        assert keystream.leaf_range(grant_start, grant_end) == [
            key_tree.leaf(i) for i in range(grant_start, grant_end)
        ]


def test_derived_keystream_leaf_range_denies_uncovered_positions(key_tree):
    tokens = key_tree.tokens_for_range(10, 20)
    keystream = DerivedKeystream(tokens, prg=key_tree.prg_name)
    with pytest.raises(KeyDerivationError):
        keystream.leaf_range(9, 15)
    with pytest.raises(KeyDerivationError):
        keystream.leaf_range(15, 21)
    assert keystream.leaf_range(10, 20) == [key_tree.leaf(i) for i in range(10, 20)]


def test_derived_keystream_leaf_range_with_disjoint_grants(key_tree):
    """Merged token sets with a hole: both sides derivable, the hole denied."""
    tokens = key_tree.tokens_for_range(0, 8) + key_tree.tokens_for_range(16, 32)
    keystream = DerivedKeystream(tokens, prg=key_tree.prg_name)
    assert keystream.leaf_range(2, 8) == [key_tree.leaf(i) for i in range(2, 8)]
    assert keystream.leaf_range(16, 30) == [key_tree.leaf(i) for i in range(16, 30)]
    with pytest.raises(KeyDerivationError):
        keystream.leaf_range(6, 18)


# ---------------------------------------------------------------------------
# HEAC batch encryption / decryption
# ---------------------------------------------------------------------------


@pytest.fixture
def cipher(key_tree):
    return HEACCipher(key_tree)


def test_encrypt_windows_matches_encrypt_vector(cipher):
    rng = random.Random(5)
    vectors = [[rng.randrange(0, 1 << 48) for _ in range(5)] for _ in range(23)]
    batch = cipher.encrypt_windows(vectors, 40)
    scalar = [cipher.encrypt_vector(vector, 40 + i) for i, vector in enumerate(vectors)]
    assert batch == scalar


def test_window_batch_keys_match_scalar_derivations(cipher):
    batch = cipher.window_batch(100, 110)
    for window in range(100, 110):
        assert batch.window_key(window) == cipher.window_key(window)
        assert batch.encoded_key(window) == cipher.encoded_key(window)
        assert batch.chunk_payload_key(window) == cipher.chunk_payload_key(window)
    with pytest.raises(KeyDerivationError):
        batch.window_key(111)
    with pytest.raises(KeyDerivationError):
        batch.leaf(99)


def test_decrypt_ranges_matches_decrypt_vector(cipher):
    rng = random.Random(17)
    per_window = [
        cipher.encrypt_vector([rng.randrange(0, 1 << 40) for _ in range(4)], window)
        for window in range(50, 98)
    ]
    # Bucketed aggregates of varying granularity, sharing bucket boundaries.
    vectors = []
    position = 0
    while position < len(per_window):
        size = rng.randrange(1, 7)
        segment = per_window[position : position + size]
        vectors.append(
            [aggregate([row[c] for row in segment]) for c in range(4)]
        )
        position += size
    assert cipher.decrypt_ranges(vectors) == [cipher.decrypt_vector(v) for v in vectors]
    assert cipher.decrypt_ranges(vectors, component_offset=2) == [
        cipher.decrypt_vector(v, component_offset=2) for v in vectors
    ]


def test_decrypt_ranges_with_scalar_only_keystream(key_tree, cipher):
    """Keystreams without leaf_range (e.g. resolution envelopes) still work."""

    class LeafOnly:
        def leaf(self, index):
            return key_tree.leaf(index)

    rng = random.Random(23)
    vectors = [
        cipher.encrypt_vector([rng.randrange(1 << 32) for _ in range(3)], window)
        for window in range(5, 12)
    ]
    fallback = HEACCipher(LeafOnly())
    assert fallback.decrypt_ranges(vectors) == [cipher.decrypt_vector(v) for v in vectors]


def test_decrypt_ranges_with_derived_keystream_enforces_scope(key_tree, cipher):
    vectors = [cipher.encrypt_vector([7, 8], window) for window in range(12, 18)]
    granted = HEACCipher(DerivedKeystream(key_tree.tokens_for_range(12, 19), prg=key_tree.prg_name))
    assert granted.decrypt_ranges(vectors) == [cipher.decrypt_vector(v) for v in vectors]
    denied = HEACCipher(DerivedKeystream(key_tree.tokens_for_range(13, 19), prg=key_tree.prg_name))
    with pytest.raises(KeyDerivationError):
        denied.decrypt_ranges(vectors)


# ---------------------------------------------------------------------------
# Aggregation-index batch append
# ---------------------------------------------------------------------------


def _int_index(store, fanout, uuid="s"):
    return AggregationIndex(
        stream_uuid=uuid,
        store=store,
        combiner=plaintext_combiner(),
        encode_cells=lambda cells: b"".join(struct.pack(">q", c) for c in cells),
        decode_cells=lambda blob: [
            struct.unpack(">q", blob[i : i + 8])[0] for i in range(0, len(blob), 8)
        ],
        fanout=fanout,
        max_windows=1 << 12,
    )


@pytest.mark.parametrize("fanout,total", [(2, 37), (3, 81), (4, 100), (64, 130)])
def test_append_many_stores_identical_bytes(fanout, total):
    rng = random.Random(fanout * total)
    scalar_store, batch_store = MemoryStore(), MemoryStore()
    scalar_index = _int_index(scalar_store, fanout)
    batch_index = _int_index(batch_store, fanout)
    vectors = [[rng.randrange(1000), rng.randrange(1000)] for _ in range(total)]
    for vector in vectors:
        scalar_index.append(vector)
    position = 0
    while position < total:
        size = rng.randrange(1, 24)
        first = batch_index.append_many(vectors[position : position + size])
        assert first == position
        position += size
    assert dict(scalar_store.scan_prefix(b"")) == dict(batch_store.scan_prefix(b""))
    for _ in range(10):
        lo = rng.randrange(total)
        hi = rng.randrange(lo + 1, total + 1)
        assert scalar_index.query_range(lo, hi) == batch_index.query_range(lo, hi)


def test_append_many_empty_batch_is_a_noop():
    index = _int_index(MemoryStore(), 4)
    assert index.append_many([]) == 0
    assert index.num_windows == 0
    index.append([1])
    assert index.append_many([]) == 1


def test_append_returns_window_index_like_before():
    index = _int_index(MemoryStore(), 4)
    assert index.append([5]) == 0
    assert index.append([6]) == 1
    assert index.append_many([[7], [8]]) == 2
    assert index.num_windows == 4


# ---------------------------------------------------------------------------
# Prune watermark
# ---------------------------------------------------------------------------


def test_prune_below_resumes_from_watermark():
    store = MemoryStore()
    index = _int_index(store, 4, uuid="decay")
    index.append_many([[i] for i in range(64)])
    assert index.prune_below(1, 32) == 32
    # A second identical rollup has nothing left to delete — and with the
    # watermark it does not even re-attempt the 32 dead positions.
    assert index.prune_below(1, 32) == 0
    assert index.prune_below(1, 48) == 16
    # The watermark survives a reload from storage.
    reloaded = _int_index(store, 4, uuid="decay")
    assert reloaded.num_windows == 64
    assert reloaded.prune_below(1, 48) == 0
    assert reloaded.prune_below(2, 64) == 16 + (64 // 4)


def test_prune_watermark_never_advances_past_ingested_head():
    """An over-wide before_window must not make later windows unprunable."""
    index = _int_index(MemoryStore(), 4, uuid="early")
    index.append_many([[i] for i in range(4)])
    assert index.prune_below(1, 100) == 4  # clamped to the 4 ingested windows
    index.append_many([[i] for i in range(8)])
    # The windows ingested after the over-wide prune are still reclaimable.
    assert index.prune_below(1, 12) == 8


def test_meta_record_backwards_compatible_with_plain_count():
    store = MemoryStore()
    index = _int_index(store, 4, uuid="old")
    index.append_many([[i] for i in range(5)])
    # Rewrite the meta record in the pre-watermark format (count only).
    store.put(b"index/old/meta", encode_varint(5))
    reloaded = _int_index(store, 4, uuid="old")
    assert reloaded.num_windows == 5
    assert reloaded.prune_below(1, 4) == 4


# ---------------------------------------------------------------------------
# Server bulk ingest and end-to-end pipeline equivalence
# ---------------------------------------------------------------------------


def _owner_stack(seed: bytes, config: StreamConfig, use_batch_sink: bool):
    """A server + writer over a deterministic key tree (no random master seed)."""
    server = ServerEngine()
    metadata = StreamMetadata.new(owner_id="o", metric="m", config=config)
    metadata.uuid = "stream-under-test"
    server.create_stream(metadata)
    tree = KeyDerivationTree(seed=seed, height=config.key_tree_height, prg="blake2")
    writer = StreamWriter(
        stream_uuid=metadata.uuid,
        config=config,
        cipher=HEACCipher(tree),
        sink=server.insert_chunk,
        batch_sink=server.insert_chunks if use_batch_sink else None,
    )
    return server, writer, tree


def test_bulk_ingest_pipeline_matches_scalar_pipeline(small_config):
    seed = bytes(range(16))
    points = [
        DataPoint(timestamp=t, value=(t // 100) % 90 + 3) for t in range(0, 40_000, 100)
    ]
    scalar_server, scalar_writer, tree = _owner_stack(seed, small_config, use_batch_sink=False)
    for point in points:
        scalar_writer.append_point(point)
    scalar_writer.flush()

    batch_server, batch_writer, _ = _owner_stack(seed, small_config, use_batch_sink=True)
    batch_writer.extend(points)
    batch_writer.flush()

    assert scalar_writer.chunks_written == batch_writer.chunks_written
    assert scalar_writer.records_written == batch_writer.records_written

    # Index nodes (and the meta record) must be byte-identical.
    prefix = b"index/stream-under-test/"
    assert dict(scalar_server.store.scan_prefix(prefix)) == dict(
        batch_server.store.scan_prefix(prefix)
    )

    # Chunk payload blobs differ in their random AEAD nonce, but the embedded
    # HEAC digest cells must match exactly and the payloads must decrypt to
    # the same points.
    num_windows = scalar_server.stream_head("stream-under-test")
    assert num_windows == batch_server.stream_head("stream-under-test")
    cipher = HEACCipher(tree)
    from repro.timeseries.serialization import chunk_storage_key

    for window in range(num_windows):
        scalar_chunk = decode_encrypted_chunk(
            scalar_server.store.get(chunk_storage_key("stream-under-test", window))
        )
        batch_chunk = decode_encrypted_chunk(
            batch_server.store.get(chunk_storage_key("stream-under-test", window))
        )
        assert scalar_chunk.digest == batch_chunk.digest
        assert scalar_chunk.num_points == batch_chunk.num_points

    # Statistical queries agree bit-for-bit.
    result_a = scalar_server.stat_range("stream-under-test", TimeRange(0, 40_000))
    result_b = batch_server.stat_range("stream-under-test", TimeRange(0, 40_000))
    assert result_a.cells == result_b.cells
    assert cipher.decrypt_vector(list(result_a.cells)) == cipher.decrypt_vector(
        list(result_b.cells)
    )


def test_insert_chunks_validates_batches(small_config):
    server, writer, _ = _owner_stack(b"v" * 16, small_config, use_batch_sink=True)
    points = [DataPoint(timestamp=t, value=1) for t in range(0, 5_000, 100)]
    encrypted = writer.encrypt_chunks(chunks_from_points(small_config, points))
    with pytest.raises(QueryError):
        server.insert_chunks([])
    with pytest.raises(QueryError):
        server.insert_chunks(encrypted[1:])  # does not start at the head
    server.insert_chunks(encrypted)
    assert server.stream_head("stream-under-test") == len(encrypted)
    with pytest.raises(QueryError):
        server.insert_chunks(encrypted)  # replay is rejected


def test_created_stream_pins_resolved_prg(owner):
    """Persisted metadata must carry a concrete PRG name, never "auto".

    "auto" resolves against the build's DEFAULT_PRG at runtime; persisting it
    would re-resolve on a later open and silently derive a different
    keystream if the default ever changes.
    """
    uuid = owner.create_stream(metric="pin")
    persisted = owner.server.stream_metadata(uuid).config.prg
    assert persisted != "auto"
    assert persisted in available_prgs()


def test_remote_client_downgrades_without_bulk_wire_op(monkeypatch, small_config):
    """A new client against an old server falls back to per-chunk ingest.

    A pre-bulk server rejects the op in ``Request.decode`` — its OPERATIONS
    tuple lacks ``insert_chunks`` — so the dispatch below reproduces the exact
    error response ("unknown operation ...") such a server puts on the wire.
    """
    from repro.exceptions import ProtocolError
    from repro.net.client import RemoteServerClient
    from repro.net.messages import Response
    from repro.net.server import RequestDispatcher, TimeCryptTCPServer
    from repro.core.timecrypt import TimeCrypt as TC

    original_dispatch = RequestDispatcher.dispatch

    def old_server_dispatch(self, request):
        if request.operation == "insert_chunks":
            return Response.failure(ProtocolError("unknown operation 'insert_chunks'"))
        return original_dispatch(self, request)

    monkeypatch.setattr(RequestDispatcher, "dispatch", old_server_dispatch)
    engine = ServerEngine()
    with TimeCryptTCPServer(engine) as tcp:
        host, port = tcp.address
        with RemoteServerClient(host, port) as remote:
            owner = TC(server=remote, owner_id="compat")
            uuid = owner.create_stream(metric="m", config=small_config)
            owner.insert_records(uuid, [(t * 100, 2.0) for t in range(100)])
            owner.flush(uuid)
            # The failed round trip strips the op from the negotiated set.
            assert not remote.supports_operation("insert_chunks")
            assert remote.stream_head(uuid) == 10
            stats = owner.get_stat_range(uuid, 0, 10_000, operators=("count", "sum"))
            assert stats == {"count": 100, "sum": 200.0}


def test_plaintext_bulk_ingest_matches_scalar():
    config = StreamConfig(chunk_interval=1_000, index_fanout=4)
    scalar = PlaintextTimeSeriesStore()
    batch = PlaintextTimeSeriesStore()
    records = [(t, float((t // 250) % 50)) for t in range(0, 30_000, 250)]
    uuid_a = scalar.create_stream(config=config, uuid="plain")
    for timestamp, value in records:
        scalar.insert_record(uuid_a, timestamp, value)
    scalar.flush(uuid_a)
    uuid_b = batch.create_stream(config=config, uuid="plain")
    batch.insert_records(uuid_b, records)
    batch.flush(uuid_b)
    assert dict(scalar.store.scan_prefix(b"")) == dict(batch.store.scan_prefix(b""))
    assert scalar.get_stat_range(uuid_a, 0, 30_000) == batch.get_stat_range(uuid_b, 0, 30_000)


def test_get_stat_series_uses_batch_decryption(populated_stream):
    """The facade's dashboard series equals per-bucket scalar decryption."""
    owner, uuid, _records = populated_stream
    reader = owner.owner_reader(uuid)
    results = owner.server.stat_series(uuid, TimeRange(0, 60_000), 7)
    batch_stats = reader.decrypt_series(results)
    scalar_stats = [reader.decrypt_statistics(result) for result in results]
    assert [s.digest.values for s in batch_stats] == [
        s.digest.values for s in scalar_stats
    ]
    assert [(s.window_start, s.window_end) for s in batch_stats] == [
        (s.window_start, s.window_end) for s in scalar_stats
    ]
