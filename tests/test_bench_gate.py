"""The CI invariant gate (``benchmarks/check_invariants.py``) itself.

The gate diffs smoke baselines against committed ``BENCH_*.json`` files on
deterministic counters; these tests pin its three check kinds (eq, le,
delta), its treatment of missing counters as regressions, and its exit
codes — so a CI-side change cannot quietly turn the gate into a no-op.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_REPO_ROOT = Path(__file__).resolve().parent.parent
_SPEC = importlib.util.spec_from_file_location(
    "check_invariants", _REPO_ROOT / "benchmarks" / "check_invariants.py"
)
gate = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(gate)


def _committed(name: str) -> dict:
    with open(_REPO_ROOT / gate.MANIFEST[name][0], "r", encoding="utf-8") as handle:
        return json.load(handle)["results"]


def test_every_manifest_path_exists_in_committed_baselines():
    """A manifest path that drifts from the baselines would gate nothing."""
    for name, (_file, checks) in gate.MANIFEST.items():
        committed = _committed(name)
        for _kind, first, second in checks:
            for path in filter(None, (first, second)):
                assert gate._lookup(committed, path) is not gate._MISSING, (
                    f"{name}: manifest path '{path}' missing from committed baseline"
                )


def test_identical_results_pass():
    for name in gate.MANIFEST:
        committed = _committed(name)
        assert gate.check_baseline(name, committed, committed) == []


def test_eq_regression_fails():
    committed = _committed("net")
    smoke = json.loads(json.dumps(committed))
    smoke["queries"]["stat_round_trips"] = 2  # a query costing two round trips again
    failures = gate.check_baseline("net", smoke, committed)
    assert len(failures) == 1 and "stat_round_trips" in failures[0]


def test_delta_regression_fails_even_when_workload_shrinks():
    committed = _committed("net")
    smoke = json.loads(json.dumps(committed))
    # Half the batches but one *extra* round trip per ingest: the absolute
    # counter shrinks, the per-run overhead (the delta) grows — caught.
    smoke["ingest"]["pipelined"]["num_batches"] = 4
    smoke["ingest"]["pipelined"]["wire_round_trips"] = 6
    failures = gate.check_baseline("net", smoke, committed)
    assert len(failures) == 1 and "wire_round_trips" in failures[0]


def test_le_bound():
    committed = _committed("sched")
    smoke = json.loads(json.dumps(committed))
    smoke["overload"]["max_depth_bulk"] = 0  # below the bound: fine
    assert gate.check_baseline("sched", smoke, committed) == []
    smoke["overload"]["max_depth_bulk"] = committed["overload"]["max_depth_bulk"] + 1
    failures = gate.check_baseline("sched", smoke, committed)
    assert len(failures) == 1 and "max_depth_bulk" in failures[0]


def test_missing_counter_is_a_regression():
    committed = _committed("sched")
    smoke = json.loads(json.dumps(committed))
    del smoke["overload"]["unanswered"]
    failures = gate.check_baseline("sched", smoke, committed)
    assert any("missing" in failure for failure in failures)


def test_cli_exit_codes(tmp_path):
    committed_doc = {"results": _committed("sharding")}
    good = tmp_path / "smoke.json"
    good.write_text(json.dumps(committed_doc))
    assert gate.main([f"sharding={good}", "--baseline-dir", str(_REPO_ROOT)]) == 0

    committed_doc["results"]["delete_round_trips"]["offload"][0]["round_trips"] = 99
    bad = tmp_path / "smoke-bad.json"
    bad.write_text(json.dumps(committed_doc))
    assert gate.main([f"sharding={bad}", "--baseline-dir", str(_REPO_ROOT)]) == 1

    with pytest.raises(SystemExit):
        gate.main(["unknown=whatever.json"])
