"""Tests for the LRU cache and the index-node cache."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.index.cache import NodeCache
from repro.index.node import IndexNode
from repro.util.cache import LRUCache


class TestLRUCache:
    def test_basic_put_get(self):
        cache = LRUCache(capacity=3)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("missing") is None
        assert cache.get("missing", default=42) == 42

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            LRUCache(capacity=0)

    def test_eviction_order_is_lru(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a
        cache.put("c", 3)  # evicts b
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache

    def test_replace_updates_weight(self):
        cache = LRUCache(capacity=10, weigher=len)
        cache.put("a", "xxxx")
        cache.put("a", "xx")
        assert cache.weight == 2

    def test_weigher_evicts_by_bytes(self):
        cache = LRUCache(capacity=10, weigher=len)
        cache.put("a", "aaaa")
        cache.put("b", "bbbb")
        cache.put("c", "cccccc")  # 6 bytes: evicts the LRU entry "a" to fit
        assert "c" in cache
        assert "a" not in cache
        assert "b" in cache
        assert cache.weight <= cache.capacity
        cache.put("d", "dddddddddd")  # 10 bytes: evicts everything else
        assert "d" in cache
        assert "b" not in cache and "c" not in cache
        assert cache.weight <= cache.capacity

    def test_peek_does_not_update_recency_or_stats(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        hits_before = cache.stats.hits
        cache.peek("a")
        assert cache.stats.hits == hits_before
        cache.put("c", 3)  # evicts a (peek did not refresh it)
        assert "a" not in cache

    def test_get_or_load(self):
        cache = LRUCache(capacity=2)
        calls = []
        value = cache.get_or_load("k", lambda: calls.append(1) or "v")
        assert value == "v" and len(calls) == 1
        value = cache.get_or_load("k", lambda: calls.append(1) or "v2")
        assert value == "v" and len(calls) == 1

    def test_invalidate(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        assert cache.invalidate("a") is True
        assert cache.invalidate("a") is False
        assert cache.weight == 0

    def test_clear(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.weight == 0

    def test_stats_counting(self):
        cache = LRUCache(capacity=1)
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        cache.put("b", 2)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.evictions == 1
        assert cache.stats.insertions == 2
        assert cache.stats.hit_rate == 0.5

    def test_items_order(self):
        cache = LRUCache(capacity=3)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")
        assert [key for key, _ in cache.items()] == ["b", "a"]

    @given(st.lists(st.tuples(st.integers(0, 20), st.integers(0, 100)), max_size=200))
    def test_weight_never_exceeds_capacity(self, operations):
        cache = LRUCache(capacity=16)
        for key, value in operations:
            cache.put(key, value)
            assert cache.weight <= cache.capacity
            assert cache.get(key) == value


class TestNodeCache:
    @staticmethod
    def _node(level: int, position: int, width: int = 2) -> IndexNode:
        return IndexNode(
            level=level,
            position=position,
            window_start=position,
            window_end=position + 1,
            cells=tuple(range(width)),
        )

    def test_put_and_get(self):
        cache = NodeCache(capacity_bytes=4096)
        key = ("s", 0, 0)
        cache.put(key, self._node(0, 0))
        assert cache.get(key) is not None

    def test_byte_budget_evicts(self):
        cache = NodeCache(capacity_bytes=200, cell_size=8)
        for position in range(20):
            cache.put(("s", 0, position), self._node(0, position))
        assert cache.used_bytes <= cache.capacity_bytes
        assert len(cache) < 20

    def test_get_or_load_skips_missing(self):
        cache = NodeCache(capacity_bytes=4096)
        assert cache.get_or_load(("s", 0, 1), lambda: None) is None
        # A later successful load is cached.
        node = self._node(0, 1)
        assert cache.get_or_load(("s", 0, 1), lambda: node) is node
        assert cache.get(("s", 0, 1)) is node

    def test_invalidate_and_clear(self):
        cache = NodeCache(capacity_bytes=4096)
        cache.put(("s", 0, 0), self._node(0, 0))
        assert cache.invalidate(("s", 0, 0)) is True
        cache.put(("s", 0, 1), self._node(0, 1))
        cache.clear()
        assert len(cache) == 0
