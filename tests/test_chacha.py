"""Tests for the from-scratch ChaCha20-Poly1305 implementation (RFC 8439 vectors)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.chacha import (
    ChaCha20Poly1305,
    chacha20_block,
    chacha20_xor,
    chacha_decrypt,
    chacha_encrypt,
    poly1305_mac,
)
from repro.exceptions import IntegrityError

RFC_KEY = bytes.fromhex(
    "808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f"
)
RFC_NONCE = bytes.fromhex("070000004041424344454647")
RFC_AAD = bytes.fromhex("50515253c0c1c2c3c4c5c6c7")
RFC_PLAINTEXT = (
    b"Ladies and Gentlemen of the class of '99: If I could offer you "
    b"only one tip for the future, sunscreen would be it."
)
RFC_TAG = bytes.fromhex("1ae10b594f09e26a7e902ecbd0600691")


class TestChaCha20Block:
    def test_rfc8439_block_function(self):
        key = bytes(range(32))
        nonce = bytes.fromhex("000000090000004a00000000")
        block = chacha20_block(key, 1, nonce)
        assert block[:16].hex() == "10f1e7e4d13b5915500fdd1fa32071c4"

    def test_invalid_key_and_nonce(self):
        with pytest.raises(ValueError):
            chacha20_block(b"short", 1, bytes(12))
        with pytest.raises(ValueError):
            chacha20_block(bytes(32), 1, b"short")

    def test_stream_xor_is_involutive(self):
        key = bytes(32)
        nonce = bytes(12)
        data = b"some stream data spanning multiple chacha blocks " * 3
        once = chacha20_xor(key, nonce, data)
        assert chacha20_xor(key, nonce, once) == data


class TestPoly1305:
    def test_rfc8439_mac_vector(self):
        key = bytes.fromhex(
            "85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b"
        )
        message = b"Cryptographic Forum Research Group"
        assert poly1305_mac(key, message).hex() == "a8061dc1305136c6c22b8baf0c0127a9"

    def test_invalid_key_length(self):
        with pytest.raises(ValueError):
            poly1305_mac(b"short", b"msg")


class TestChaCha20Poly1305:
    def test_rfc8439_aead_vector(self):
        out = ChaCha20Poly1305(RFC_KEY).encrypt(RFC_NONCE, RFC_PLAINTEXT, RFC_AAD)
        assert out[-16:] == RFC_TAG

    def test_rfc8439_aead_roundtrip(self):
        aead = ChaCha20Poly1305(RFC_KEY)
        blob = aead.encrypt(RFC_NONCE, RFC_PLAINTEXT, RFC_AAD)
        assert aead.decrypt(RFC_NONCE, blob, RFC_AAD) == RFC_PLAINTEXT

    def test_tamper_detection(self):
        aead = ChaCha20Poly1305(RFC_KEY)
        blob = bytearray(aead.encrypt(RFC_NONCE, RFC_PLAINTEXT, RFC_AAD))
        blob[3] ^= 0x40
        with pytest.raises(IntegrityError):
            aead.decrypt(RFC_NONCE, bytes(blob), RFC_AAD)

    def test_wrong_aad_rejected(self):
        aead = ChaCha20Poly1305(RFC_KEY)
        blob = aead.encrypt(RFC_NONCE, RFC_PLAINTEXT, RFC_AAD)
        with pytest.raises(IntegrityError):
            aead.decrypt(RFC_NONCE, blob, b"different aad")

    def test_short_blob_rejected(self):
        with pytest.raises(IntegrityError):
            ChaCha20Poly1305(RFC_KEY).decrypt(RFC_NONCE, b"x")

    def test_invalid_key_length(self):
        with pytest.raises(ValueError):
            ChaCha20Poly1305(b"short")


class TestChaChaHelpers:
    def test_roundtrip_with_random_nonce(self):
        key = b"k" * 32
        blob = chacha_encrypt(key, b"hello", b"aad")
        assert chacha_decrypt(key, blob, b"aad") == b"hello"

    def test_wrong_key_fails(self):
        blob = chacha_encrypt(b"a" * 32, b"hello")
        with pytest.raises(IntegrityError):
            chacha_decrypt(b"b" * 32, blob)

    def test_explicit_nonce_respected(self):
        key = b"k" * 32
        blob = chacha_encrypt(key, b"hello", nonce=bytes(12))
        assert blob[:12] == bytes(12)

    def test_invalid_nonce_length(self):
        with pytest.raises(ValueError):
            chacha_encrypt(b"k" * 32, b"hello", nonce=b"short")

    @given(st.binary(max_size=500), st.binary(max_size=32))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, plaintext, aad):
        key = b"z" * 32
        assert chacha_decrypt(key, chacha_encrypt(key, plaintext, aad), aad) == plaintext
