"""Tests for compression codecs and the chunk/digest serialization formats."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.heac import HEACCiphertext
from repro.exceptions import ChunkError, ConfigurationError
from repro.timeseries.compression import (
    available_codecs,
    compression_ratio,
    deserialize_points,
    get_codec,
    serialize_points,
)
from repro.timeseries.point import DataPoint
from repro.timeseries.serialization import (
    EncryptedChunk,
    chunk_storage_key,
    decode_digest_vector,
    decode_encrypted_chunk,
    encode_digest_vector,
    encode_encrypted_chunk,
    index_node_storage_key,
    metadata_storage_key,
)

REGULAR_POINTS = [DataPoint(timestamp=1000 * i, value=500 + (i % 10)) for i in range(200)]


def _point_lists():
    return st.lists(
        st.tuples(st.integers(0, 2**40), st.integers(-(2**40), 2**40)),
        max_size=100,
    ).map(
        lambda pairs: [
            DataPoint(timestamp=t, value=v) for t, v in sorted(pairs, key=lambda p: p[0])
        ]
    )


class TestPointSerialization:
    def test_roundtrip_empty(self):
        assert deserialize_points(serialize_points([])) == []

    @given(_point_lists())
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, points):
        assert deserialize_points(serialize_points(points)) == points


class TestCodecs:
    def test_available_codecs(self):
        assert set(available_codecs()) == {"none", "zlib", "delta", "delta-zlib"}

    def test_unknown_codec_rejected(self):
        with pytest.raises(ConfigurationError):
            get_codec("lz77")

    @pytest.mark.parametrize("name", ["none", "zlib", "delta", "delta-zlib"])
    def test_roundtrip_regular_series(self, name):
        codec = get_codec(name)
        assert codec.decompress(codec.compress(REGULAR_POINTS)) == REGULAR_POINTS

    @pytest.mark.parametrize("name", ["none", "zlib", "delta", "delta-zlib"])
    def test_roundtrip_empty(self, name):
        codec = get_codec(name)
        assert codec.decompress(codec.compress([])) == []

    def test_regular_series_compresses(self):
        # The varint serialization is already compact, so zlib's win is modest;
        # the structure-aware delta codecs compress a regular series much harder.
        assert compression_ratio(REGULAR_POINTS, "zlib") > 1.2
        assert compression_ratio(REGULAR_POINTS, "delta") > 2.0
        assert compression_ratio(REGULAR_POINTS, "delta-zlib") > 2.0

    def test_delta_handles_negative_values(self):
        points = [DataPoint(i * 10, (-1) ** i * i * 100) for i in range(50)]
        codec = get_codec("delta")
        assert codec.decompress(codec.compress(points)) == points

    def test_corrupt_zlib_payload_rejected(self):
        with pytest.raises(ChunkError):
            get_codec("zlib").decompress(b"not zlib data")
        with pytest.raises(ChunkError):
            get_codec("delta-zlib").decompress(b"not zlib data")

    def test_zlib_level_validation(self):
        from repro.timeseries.compression import ZlibCodec

        with pytest.raises(ConfigurationError):
            ZlibCodec(level=11)

    @pytest.mark.parametrize("name", ["none", "zlib", "delta", "delta-zlib"])
    @given(points=_point_lists())
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, name, points):
        codec = get_codec(name)
        assert codec.decompress(codec.compress(points)) == points


class TestDigestVectorSerialization:
    def _cells(self):
        return [
            HEACCiphertext(value=12345, window_start=7, window_end=8),
            HEACCiphertext(value=2**63, window_start=7, window_end=8),
        ]

    def test_roundtrip(self):
        cells = self._cells()
        assert decode_digest_vector(encode_digest_vector(cells)) == cells

    def test_empty_vector(self):
        assert decode_digest_vector(encode_digest_vector([])) == []

    def test_bad_magic_rejected(self):
        with pytest.raises(ChunkError):
            decode_digest_vector(b"XXXX\x00")

    def test_truncated_rejected(self):
        blob = encode_digest_vector(self._cells())
        with pytest.raises(ChunkError):
            decode_digest_vector(blob[: len(blob) // 2])

    @given(
        st.lists(
            st.tuples(st.integers(0, 2**64 - 1), st.integers(0, 2**30)),
            max_size=20,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, raw):
        cells = [
            HEACCiphertext(value=value, window_start=start, window_end=start + 1)
            for value, start in raw
        ]
        assert decode_digest_vector(encode_digest_vector(cells)) == cells


class TestEncryptedChunkSerialization:
    def _chunk(self) -> EncryptedChunk:
        return EncryptedChunk(
            stream_uuid="stream-abc",
            window_index=42,
            payload=b"\x01\x02\x03 encrypted payload bytes",
            digest=[HEACCiphertext(value=99, window_start=42, window_end=43)],
            num_points=17,
        )

    def test_roundtrip(self):
        chunk = self._chunk()
        decoded = decode_encrypted_chunk(encode_encrypted_chunk(chunk))
        assert decoded == chunk

    def test_bad_magic_rejected(self):
        with pytest.raises(ChunkError):
            decode_encrypted_chunk(b"NOPE" + b"\x00" * 10)

    def test_truncated_payload_rejected(self):
        blob = encode_encrypted_chunk(self._chunk())
        with pytest.raises(ChunkError):
            decode_encrypted_chunk(blob[:-5])

    def test_size_accounting(self):
        chunk = self._chunk()
        assert chunk.size_bytes == len(chunk.payload) + 8


class TestStorageKeys:
    def test_chunk_keys_sort_by_window(self):
        keys = [chunk_storage_key("s", w) for w in (0, 1, 255, 65536)]
        assert keys == sorted(keys)

    def test_keys_are_namespaced(self):
        assert chunk_storage_key("s", 0).startswith(b"chunk/s/")
        assert index_node_storage_key("s", 2, 5).startswith(b"index/s/02/")
        assert metadata_storage_key("s") == b"meta/s"

    def test_different_streams_do_not_collide(self):
        assert chunk_storage_key("a", 0) != chunk_storage_key("b", 0)
