"""Tests for the low-level binary encodings."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.encoding import (
    decode_signed_varint,
    decode_varint,
    decode_zigzag,
    encode_signed_varint,
    encode_varint,
    encode_zigzag,
    from_u64_signed,
    int_from_bytes,
    int_to_bytes,
    pack_varint_list,
    to_u64,
    unpack_varint_list,
)


class TestVarint:
    def test_zero(self):
        assert encode_varint(0) == b"\x00"
        assert decode_varint(b"\x00") == (0, 1)

    def test_single_byte_boundary(self):
        assert encode_varint(127) == b"\x7f"
        assert len(encode_varint(128)) == 2

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_varint(-1)

    def test_truncated_input(self):
        with pytest.raises(ValueError):
            decode_varint(b"\x80")

    def test_overlong_rejected(self):
        with pytest.raises(ValueError):
            decode_varint(b"\xff" * 11)

    def test_decode_with_offset(self):
        blob = b"\x05" + encode_varint(300)
        value, pos = decode_varint(blob, 1)
        assert value == 300
        assert pos == len(blob)

    @given(st.integers(min_value=0, max_value=2**63 - 1))
    def test_roundtrip(self, value):
        assert decode_varint(encode_varint(value))[0] == value


class TestZigzag:
    @pytest.mark.parametrize(
        "signed,unsigned", [(0, 0), (-1, 1), (1, 2), (-2, 3), (2, 4), (2147483647, 4294967294)]
    )
    def test_known_mappings(self, signed, unsigned):
        assert encode_zigzag(signed) == unsigned
        assert decode_zigzag(unsigned) == signed

    @given(st.integers(min_value=-(2**62), max_value=2**62))
    def test_roundtrip(self, value):
        assert decode_zigzag(encode_zigzag(value)) == value

    @given(st.integers(min_value=-(2**62), max_value=2**62))
    def test_signed_varint_roundtrip(self, value):
        assert decode_signed_varint(encode_signed_varint(value))[0] == value

    def test_small_magnitudes_stay_small(self):
        assert len(encode_signed_varint(-3)) == 1
        assert len(encode_signed_varint(3)) == 1


class TestVarintList:
    def test_empty(self):
        assert unpack_varint_list(pack_varint_list([]))[0] == []

    @given(st.lists(st.integers(min_value=-(2**40), max_value=2**40), max_size=50))
    def test_roundtrip(self, values):
        assert unpack_varint_list(pack_varint_list(values))[0] == values


class TestFixedWidth:
    def test_int_bytes_roundtrip(self):
        assert int_from_bytes(int_to_bytes(123456789, 8)) == 123456789

    def test_u64_wrapping(self):
        assert to_u64(2**64 + 5) == 5
        assert to_u64(-1) == 2**64 - 1

    def test_signed_reinterpretation(self):
        assert from_u64_signed(2**64 - 1) == -1
        assert from_u64_signed(5) == 5
        assert from_u64_signed(2**63) == -(2**63)
