"""Integration tests: the full TimeCrypt pipeline against the plaintext oracle."""

from __future__ import annotations

import statistics

import pytest

from repro import (
    PlaintextTimeSeriesStore,
    ServerEngine,
    TimeCrypt,
    TimeCryptConsumer,
)
from repro.exceptions import (
    AccessDeniedError,
    QueryError,
    StreamExistsError,
    StreamNotFoundError,
    TimeCryptError,
)
from tests.conftest import make_principal


class TestOwnerPath:
    def test_statistics_match_plaintext_oracle(self, populated_stream):
        owner, uuid, records = populated_stream
        values = [v for _, v in records]
        stats = owner.get_stat_range(
            uuid, 0, 60_000, operators=("sum", "count", "mean", "var", "stdev")
        )
        assert stats["count"] == len(values)
        assert stats["sum"] == pytest.approx(sum(values))
        assert stats["mean"] == pytest.approx(statistics.mean(values))
        assert stats["var"] == pytest.approx(statistics.pvariance(values), abs=1e-6)
        assert stats["stdev"] == pytest.approx(statistics.pstdev(values), abs=1e-6)

    def test_sub_range_statistics(self, populated_stream):
        owner, uuid, records = populated_stream
        subset = [v for t, v in records if 10_000 <= t < 42_000]
        stats = owner.get_stat_range(uuid, 10_000, 42_000, operators=("sum", "count"))
        assert stats["count"] == len(subset)
        assert stats["sum"] == pytest.approx(sum(subset))

    def test_histogram_and_minmax(self, populated_stream):
        owner, uuid, records = populated_stream
        stats = owner.get_stat_range(uuid, 0, 60_000, operators=("freq", "min", "max"))
        values = [v for _, v in records]
        assert sum(stats["freq"]) == len(values)
        min_lo, min_hi = stats["min"]
        assert (min_lo is None or min_lo <= min(values)) and min(values) < min_hi
        max_lo, max_hi = stats["max"]
        assert max_lo <= max(values) and (max_hi is None or max(values) < max_hi)

    def test_raw_range_roundtrip(self, populated_stream):
        owner, uuid, records = populated_stream
        points = owner.get_range(uuid, 5_000, 20_000)
        expected = [(t, v) for t, v in records if 5_000 <= t < 20_000]
        assert len(points) == len(expected)
        assert [p.timestamp for p in points] == [t for t, _ in expected]

    def test_matches_plaintext_system_exactly(self, small_config):
        records = [(t, (t // 500) % 90) for t in range(0, 30_000, 250)]
        encrypted_server = ServerEngine()
        encrypted = TimeCrypt(server=encrypted_server, owner_id="o")
        enc_uuid = encrypted.create_stream(config=small_config)
        encrypted.insert_records(enc_uuid, records)
        encrypted.flush(enc_uuid)

        plaintext = PlaintextTimeSeriesStore()
        plain_uuid = plaintext.create_stream(config=small_config)
        plaintext.insert_records(plain_uuid, records)
        plaintext.flush(plain_uuid)

        for start, end in [(0, 30_000), (1_000, 17_000), (12_000, 13_000)]:
            enc_stats = encrypted.get_stat_range(enc_uuid, start, end, operators=("sum", "count", "mean"))
            plain_stats = plaintext.get_stat_range(plain_uuid, start, end, operators=("sum", "count", "mean"))
            assert enc_stats["count"] == plain_stats["count"]
            assert enc_stats["sum"] == pytest.approx(plain_stats["sum"])
            assert enc_stats["mean"] == pytest.approx(plain_stats["mean"])

    def test_delete_range_keeps_statistics(self, populated_stream):
        owner, uuid, records = populated_stream
        deleted = owner.delete_range(uuid, 0, 10_000)
        assert deleted == 10
        # Raw data is gone...
        assert owner.get_range(uuid, 0, 10_000) == []
        # ...but the digests (and hence statistics) survive.
        stats = owner.get_stat_range(uuid, 0, 60_000, operators=("count",))
        assert stats["count"] == len(records)

    def test_rollup_stream(self, populated_stream):
        owner, uuid, records = populated_stream
        deleted = owner.rollup_stream(uuid, resolution_interval=4_000)
        assert deleted > 0
        stats = owner.get_stat_range(uuid, 0, 60_000, operators=("count",))
        assert stats["count"] == len(records)

    def test_stream_lifecycle_errors(self, owner, small_config):
        uuid = owner.create_stream(config=small_config, uuid="fixed-uuid")
        with pytest.raises(StreamExistsError):
            owner.create_stream(config=small_config, uuid="fixed-uuid")
        owner.delete_stream(uuid)
        with pytest.raises(StreamNotFoundError):
            owner.insert_record(uuid, 0, 1.0)

    def test_query_before_any_data(self, owner, small_config):
        uuid = owner.create_stream(config=small_config)
        with pytest.raises(QueryError):
            owner.get_stat_range(uuid, 0, 1_000)

    def test_server_side_sees_only_ciphertext(self, populated_stream):
        owner, uuid, records = populated_stream
        server = owner.server
        chunk = server.get_chunk(uuid, 0)
        assert chunk is not None
        window_values = [v for t, v in records if t < 1_000]
        # The encrypted digest value does not equal the plaintext sum, and the
        # payload does not contain the serialized plaintext points.
        assert chunk.digest[0].value != sum(window_values)
        from repro.timeseries.compression import serialize_points
        from repro.timeseries.point import DataPoint

        plain_payload = serialize_points(
            [DataPoint(t, v) for t, v in records if t < 1_000]
        )
        assert plain_payload not in chunk.payload


class TestConsumerPath:
    def test_full_resolution_consumer_scope(self, populated_stream, small_config):
        owner, uuid, records = populated_stream
        bob = make_principal(owner, "bob")
        owner.grant_access(uuid, "bob", 10_000, 30_000)
        consumer = TimeCryptConsumer(server=owner.server, principal=bob)
        consumer.fetch_access(uuid, small_config)

        in_scope = [v for t, v in records if 10_000 <= t < 30_000]
        stats = consumer.get_stat_range(uuid, 10_000, 30_000, operators=("sum", "count"))
        assert stats["count"] == len(in_scope)
        assert stats["sum"] == pytest.approx(sum(in_scope))

        with pytest.raises(AccessDeniedError):
            consumer.get_stat_range(uuid, 0, 30_000)
        with pytest.raises(AccessDeniedError):
            consumer.get_stat_range(uuid, 10_000, 31_000)

    def test_consumer_raw_access_within_scope(self, populated_stream, small_config):
        owner, uuid, records = populated_stream
        bob = make_principal(owner, "bob")
        owner.grant_access(uuid, "bob", 10_000, 30_000)
        consumer = TimeCryptConsumer(server=owner.server, principal=bob)
        consumer.fetch_access(uuid, small_config)
        points = consumer.get_range(uuid, 10_000, 12_000)
        assert len(points) == sum(1 for t, _ in records if 10_000 <= t < 12_000)

    def test_consumer_without_grant(self, populated_stream, small_config):
        owner, uuid, _records = populated_stream
        eve = make_principal(owner, "eve")
        consumer = TimeCryptConsumer(server=owner.server, principal=eve)
        with pytest.raises(AccessDeniedError):
            consumer.fetch_access(uuid, small_config)
        with pytest.raises(AccessDeniedError):
            consumer.get_stat_range(uuid, 0, 1_000)

    def test_grant_envelope_not_openable_by_other_principal(self, populated_stream, small_config):
        owner, uuid, _records = populated_stream
        make_principal(owner, "bob")
        mallory = make_principal(owner, "mallory")
        owner.grant_access(uuid, "bob", 0, 10_000)
        # Mallory cannot open Bob's sealed grant even if she fetches it directly.
        sealed = owner.server.fetch_grants(uuid, "bob")[-1]
        with pytest.raises(TimeCryptError):
            mallory.decrypt_envelope(sealed, context=uuid.encode())

    def test_resolution_restricted_consumer(self, populated_stream, small_config):
        owner, uuid, records = populated_stream
        coach = make_principal(owner, "coach")
        owner.grant_access(uuid, "coach", 0, 60_000, resolution_interval=6_000)
        consumer = TimeCryptConsumer(server=owner.server, principal=coach)
        token = consumer.fetch_access(uuid, small_config)
        assert token.resolution_chunks == 6

        aligned = consumer.get_stat_range(uuid, 0, 12_000, operators=("count", "mean"))
        expected = [v for t, v in records if t < 12_000]
        assert aligned["count"] == len(expected)
        assert aligned["mean"] == pytest.approx(statistics.mean(expected))

        with pytest.raises(AccessDeniedError):
            consumer.get_stat_range(uuid, 0, 3_000)
        with pytest.raises(AccessDeniedError):
            consumer.get_range(uuid, 0, 12_000)

    def test_dashboard_series(self, populated_stream, small_config):
        owner, uuid, records = populated_stream
        doc = make_principal(owner, "doc")
        owner.grant_access(uuid, "doc", 0, 60_000)
        consumer = TimeCryptConsumer(server=owner.server, principal=doc)
        consumer.fetch_access(uuid, small_config)
        series = consumer.get_stat_series(uuid, 0, 60_000, granularity_interval=10_000, operators=("mean", "count"))
        assert len(series) == 6
        assert sum(entry["count"] for entry in series) == len(records)

    def test_revocation_is_forward_secret(self, owner, small_config):
        uuid = owner.create_stream(config=small_config)
        first_half = [(t, float(t % 50)) for t in range(0, 30_000, 100)]
        owner.insert_records(uuid, first_half)
        owner.flush(uuid)

        doc = make_principal(owner, "doc")
        owner.grant_access(uuid, "doc", 0, 120_000)
        consumer = TimeCryptConsumer(server=owner.server, principal=doc)
        consumer.fetch_access(uuid, small_config)
        assert consumer.get_stat_range(uuid, 0, 30_000, operators=("count",))["count"] == len(first_half)

        # Revoke from t=30s; the re-issued grant stops there.
        owner.revoke_access(uuid, "doc", 30_000)
        second_half = [(t, float(t % 50)) for t in range(30_000, 60_000, 100)]
        owner.insert_records(uuid, second_half)
        owner.flush(uuid)

        consumer.fetch_access(uuid, small_config)  # picks up the clipped grant
        assert consumer.get_stat_range(uuid, 0, 30_000, operators=("count",))["count"] == len(first_half)
        with pytest.raises(AccessDeniedError):
            consumer.get_stat_range(uuid, 0, 60_000)


class TestMultiStreamQueries:
    def test_owner_inter_stream_aggregate(self, owner, small_config):
        uuids = []
        totals = []
        counts = 0
        for stream_index in range(3):
            uuid = owner.create_stream(config=small_config, metric=f"m{stream_index}")
            records = [(t, float(stream_index + 1)) for t in range(0, 10_000, 100)]
            owner.insert_records(uuid, records)
            owner.flush(uuid)
            uuids.append(uuid)
            totals.append(sum(v for _, v in records))
            counts += len(records)
        stats = owner.get_stat_range(uuids, 0, 10_000, operators=("sum", "count", "mean"))
        assert stats["count"] == counts
        assert stats["sum"] == pytest.approx(sum(totals))

    def test_consumer_needs_all_streams(self, owner, small_config):
        uuid_a = owner.create_stream(config=small_config)
        uuid_b = owner.create_stream(config=small_config)
        for uuid in (uuid_a, uuid_b):
            owner.insert_records(uuid, [(t, 1.0) for t in range(0, 10_000, 100)])
            owner.flush(uuid)
        doc = make_principal(owner, "doc")
        owner.grant_access(uuid_a, "doc", 0, 10_000)
        consumer = TimeCryptConsumer(server=owner.server, principal=doc)
        consumer.fetch_access(uuid_a, small_config)
        with pytest.raises(AccessDeniedError):
            consumer.get_stat_range_multi([uuid_a, uuid_b], 0, 10_000)
        # After being granted the second stream too, the query succeeds.
        owner.grant_access(uuid_b, "doc", 0, 10_000)
        consumer.fetch_access(uuid_b, small_config)
        stats = consumer.get_stat_range_multi([uuid_a, uuid_b], 0, 10_000)
        assert stats["count"] == 200
        assert stats["sum"] == 200


class TestServerRecovery:
    def test_server_restart_recovers_streams(self, small_config):
        from repro.storage.memory import MemoryStore

        store = MemoryStore()
        server = ServerEngine(store=store)
        owner = TimeCrypt(server=server, owner_id="o")
        uuid = owner.create_stream(config=small_config)
        records = [(t, float(t % 10)) for t in range(0, 20_000, 100)]
        owner.insert_records(uuid, records)
        owner.flush(uuid)

        # A new engine over the same storage sees the stream and can serve the
        # owner's statistical queries (the owner re-derives keys from its seed).
        recovered = ServerEngine(store=store)
        assert uuid in recovered.list_streams()
        assert recovered.stream_head(uuid) == 20
        owner.server = recovered
        stats = owner.get_stat_range(uuid, 0, 20_000, operators=("count",))
        assert stats["count"] == len(records)
