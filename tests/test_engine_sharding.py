"""Tests for the sharded engine tier and the scan-offload stack under it.

Covers the routing table (wire form, ownership determinism, evolution), the
shard servers' ownership enforcement (typed ``wrong_shard`` redirects), the
routing-aware client (byte-identity of a mirrored workload against one
engine vs. four sharded engines over real sockets, redial + table refresh
across an engine kill, stale-epoch convergence, non-convergence detection),
the router's proxy path for routing-unaware clients (including cross-shard
``stat_range_multi`` / ``put_grants`` splits), and the engine-side scan
offload this tier rides on: ``kv_scan_prefix`` / ``kv_delete_prefix`` wire
round-trip budgets, range-filtered scans, cluster-wide prefix erase with
hint hygiene, and ``delete_stream`` cost independent of keyspace size.
Satellites: batched grant issuance sharing one subtree-cover traversal, and
the sorted-key-cache mixin invariants on both backends.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import pytest

from repro import ServerEngine, StreamConfig, TimeCrypt
from repro.access.grants import GrantManager
from repro.access.keystore import TokenStore
from repro.access.policy import AccessPolicy
from repro.access.principal import IdentityProvider, Principal
from repro.crypto.keytree import KeyDerivationTree
from repro.exceptions import ChunkError, ProtocolError, StreamNotFoundError, WrongShardError
from repro.net.client import RemoteServerClient, ShardedServerClient
from repro.net.messages import Request, ShardRoutingTable
from repro.server.router import (
    EngineShardServer,
    RoutingTableRef,
    StreamRouter,
    deploy_sharded_engines,
)
from repro.storage.cluster import StorageCluster
from repro.storage.disk import AppendLogStore
from repro.storage.memory import MemoryStore
from repro.storage.node import StorageNodeServer
from repro.storage.remote import RemoteKeyValueStore
from repro.timeseries.serialization import encode_encrypted_chunk, peek_chunk_stream_uuid
from repro.util.timeutil import TimeRange

CHUNK_INTERVAL = 1_000
POINTS_PER_CHUNK = 4


def _records(num_chunks: int):
    step = CHUNK_INTERVAL // POINTS_PER_CHUNK
    return [(t, float((t // step) % 50)) for t in range(0, num_chunks * CHUNK_INTERVAL, step)]


def _encrypted_streams(num_streams: int, num_chunks: int):
    """Encrypt streams ONCE with a scratch in-process engine.

    Replaying identical bytes into every deployment under test is what makes
    byte-for-byte read equivalence a meaningful assertion — two facades
    would draw different stream keys and produce different ciphertexts.
    """
    server = ServerEngine()
    owner = TimeCrypt(server=server, owner_id="tester")
    streams = []
    for index in range(num_streams):
        config = StreamConfig(chunk_interval=CHUNK_INTERVAL, index_fanout=4)
        uuid = owner.create_stream(metric=f"shard-{index}", config=config)
        owner.insert_records(uuid, _records(num_chunks))
        owner.flush(uuid)
        chunks = [server.get_chunk(uuid, position) for position in range(num_chunks)]
        assert all(chunk is not None for chunk in chunks)
        streams.append((server.stream_metadata(uuid), chunks))
    return streams


def _replay(client, streams) -> None:
    for metadata, chunks in streams:
        client.create_stream(metadata)
        client.insert_chunks(chunks)


def _streams_spanning_owners(table, num_streams: int, num_chunks: int):
    """Encrypted streams guaranteed to land on at least two shards.

    Stream uuids are random, so a fixed batch can (rarely) hash onto a
    single shard; top up until the spread holds so cross-shard assertions
    never go vacuous.
    """
    streams = _encrypted_streams(num_streams, num_chunks)
    for _attempt in range(64):
        if len({table.owner_of(metadata.uuid) for metadata, _chunks in streams}) > 1:
            return streams
        streams.extend(_encrypted_streams(1, num_chunks))
    raise AssertionError("could not spread streams across shards")


def _sharded_deployment(num_engines: int):
    """N engines over ONE shared store (disjoint key prefixes per concern)."""
    shared = MemoryStore()
    engines = {
        f"engine-{index}": ServerEngine(store=shared, token_store=TokenStore(store=shared))
        for index in range(num_engines)
    }
    router, shards = deploy_sharded_engines(engines)
    return shared, router, shards


def _stop_all(router, shards) -> None:
    router.stop()
    for shard in shards.values():
        shard.stop()


# ---------------------------------------------------------------------------
# Routing table
# ---------------------------------------------------------------------------


class TestShardRoutingTable:
    def test_payload_round_trip(self):
        table = ShardRoutingTable(
            [("b", "10.0.0.2", 7002), ("a", "10.0.0.1", 7001)], epoch=3, virtual_tokens=32
        )
        clone = ShardRoutingTable.from_payload(table.to_payload())
        assert clone.epoch == 3
        assert clone.virtual_tokens == 32
        assert clone.engine_names == ["a", "b"]
        assert clone.address_of("b") == ("10.0.0.2", 7002)
        for uuid in ("s-1", "s-2", "s-3", "s-4"):
            assert clone.owner_of(uuid) == table.owner_of(uuid)

    def test_ownership_is_deterministic_and_spread(self):
        table = ShardRoutingTable([(f"e{i}", "h", i) for i in range(4)], epoch=1)
        owners = {table.owner_of(f"stream-{index}") for index in range(64)}
        assert owners == {"e0", "e1", "e2", "e3"}  # every shard owns something

    def test_evolution_bumps_epoch(self):
        table = ShardRoutingTable([("a", "h", 1)], epoch=1)
        grown = table.with_engine("b", "h", 2)
        assert grown.epoch == 2 and grown.engine_names == ["a", "b"]
        shrunk = grown.without_engine("a")
        assert shrunk.epoch == 3 and shrunk.engine_names == ["b"]
        assert table.engine_names == ["a"]  # immutable: original untouched
        with pytest.raises(ProtocolError):
            grown.with_engine("a", "h", 9)
        with pytest.raises(ProtocolError):
            grown.without_engine("zz")
        with pytest.raises(ProtocolError):
            ShardRoutingTable([("a", "h", 1), ("a", "h", 2)])

    def test_empty_table_refuses_to_place(self):
        with pytest.raises(ProtocolError):
            ShardRoutingTable().owner_of("s")
        with pytest.raises(ProtocolError):
            ShardRoutingTable([("a", "h", 1)]).address_of("b")

    def test_malformed_payload(self):
        with pytest.raises(ProtocolError):
            ShardRoutingTable.from_payload({"engines": [{"name": "a"}]})

    def test_chunk_uuid_peek(self):
        ((metadata, chunks),) = _encrypted_streams(1, 2)
        blob = encode_encrypted_chunk(chunks[0])
        assert peek_chunk_stream_uuid(blob) == metadata.uuid
        with pytest.raises(ChunkError):
            peek_chunk_stream_uuid(b"nope")
        with pytest.raises(ChunkError):
            peek_chunk_stream_uuid(blob[:5])


# ---------------------------------------------------------------------------
# Sharded tier over real sockets
# ---------------------------------------------------------------------------


def _read_everything(client, streams) -> Dict:
    """Every read surface, raw enough to compare byte-for-byte."""
    full = TimeRange(0, 10 * CHUNK_INTERVAL)
    out: Dict = {}
    for metadata, _chunks in streams:
        uuid = metadata.uuid
        out[uuid] = {
            "head": client.stream_head(uuid),
            "chunks": [encode_encrypted_chunk(c) for c in client.get_range(uuid, full)],
            "stat": [
                (cell.value, cell.window_start, cell.window_end)
                for cell in client.stat_range(uuid, full).cells
            ],
            "series": [
                tuple(cell.value for cell in result.cells)
                for result in client.stat_series(uuid, full, 2)
            ],
            "grants": client.fetch_grants(uuid, "alice"),
            "envelopes": client.fetch_envelopes(uuid, 4, 0, 8),
        }
    aggregate = client.stat_range_multi([m.uuid for m, _ in streams], full)
    out["multi"] = (aggregate.values, aggregate.component_names, aggregate.per_stream_intervals)
    return out


class TestShardedEquivalence:
    def test_one_engine_vs_four_shards_byte_identical(self):
        _store_a, router_a, shards_a = _sharded_deployment(1)
        _store_b, router_b, shards_b = _sharded_deployment(4)
        streams = _streams_spanning_owners(router_b.table, 5, 4)
        try:
            with ShardedServerClient(*router_a.address, timeout=10.0) as client_a, \
                    ShardedServerClient(*router_b.address, timeout=10.0) as client_b:
                for client in (client_a, client_b):
                    _replay(client, streams)
                    grants = [
                        (metadata.uuid, "alice", f"sealed-{metadata.uuid}".encode())
                        for metadata, _chunks in streams
                    ]
                    assert client.put_grants(grants) == [0] * len(streams)
                    for metadata, _chunks in streams:
                        client.token_store.put_envelopes(
                            metadata.uuid, 4, {0: b"env0-" + metadata.uuid.encode(), 4: b"env4"}
                        )
                # The 4-shard deployment actually spread the workload.
                owners = {
                    client_b.routing_table.owner_of(metadata.uuid)
                    for metadata, _chunks in streams
                }
                assert len(owners) > 1
                assert _read_everything(client_a, streams) == _read_everything(client_b, streams)
        finally:
            _stop_all(router_a, shards_a)
            _stop_all(router_b, shards_b)

    def test_engine_kill_redial_and_refresh(self):
        _store, router, shards = _sharded_deployment(3)
        streams = _encrypted_streams(4, 3)
        victim = None
        try:
            with ShardedServerClient(*router.address, timeout=10.0) as client:
                _replay(client, streams)
                before = _read_everything(client, streams)
                victim = client.routing_table.owner_of(streams[0][0].uuid)
                shards[victim].stop()
                router.remove_engine(victim)
                # Transport loss on the dead shard → redial + table refresh →
                # the new owner rebuilds the stream lazily from shared storage.
                after = _read_everything(client, streams)
                assert after == before
                assert client.routing_epoch == 2
                assert victim not in client.routing_table.engine_names
                # Writes keep working on the survivors.
                assert client.stream_head(streams[0][0].uuid) == 3
        finally:
            _stop_all(router, {n: s for n, s in shards.items() if n != victim})

    def test_stale_epoch_client_converges(self):
        streams = _encrypted_streams(6, 2)
        shared, router, shards = _sharded_deployment(3)
        extra = None
        try:
            with ShardedServerClient(*router.address, timeout=10.0) as client:
                _replay(client, streams)
                assert client.routing_epoch == 1
                # Pick a (stream, shard-name) pair the ring maps together, so
                # the membership change provably moves a stream the client
                # already routed under the old epoch.  Searching every stream
                # matters: a single stream whose hash lands just before an
                # existing token leaves only a sliver of ring for a new
                # node's tokens to claim, and all 256 candidates can miss it
                # (~1% of runs when pinned to streams[0]).
                current = router.table
                target, name = next(
                    (metadata.uuid, candidate)
                    for metadata, _chunks in streams
                    for candidate in (f"engine-9{index}" for index in range(256))
                    if current.with_engine(candidate, "127.0.0.1", 1).owner_of(
                        metadata.uuid
                    )
                    == candidate
                )
                engine = ServerEngine(store=shared, token_store=TokenStore(store=shared))
                extra = EngineShardServer(name, engine, router.table_ref).start()
                router.add_engine(name, *extra.address)
                assert router.table.owner_of(target) == name
                # The client still holds epoch 1 and routes to the old owner,
                # whose wrong_shard redirect forces the refresh.
                assert client.stream_head(target) == 2
                assert client.routing_epoch == 2
        finally:
            if extra is not None:
                extra.stop()
            _stop_all(router, shards)

    def test_miswired_shard_names_do_not_loop(self):
        """Peers answering for each other's shards must error out, not spin."""
        shared = MemoryStore()
        ref = RoutingTableRef()
        # Deliberately cross-wired: the server named "a" in the table
        # believes it is "b", and vice versa — every route bounces forever.
        shard_one = EngineShardServer("b", ServerEngine(store=shared), ref).start()
        shard_two = EngineShardServer("a", ServerEngine(store=shared), ref).start()
        ref.set_engines([("a", *shard_one.address), ("b", *shard_two.address)])
        router = StreamRouter(ref).start()
        try:
            with ShardedServerClient(*router.address, timeout=10.0) as client:
                with pytest.raises(ProtocolError, match="did not converge"):
                    client.stream_head("some-stream")
        finally:
            router.stop()
            shard_one.stop()
            shard_two.stop()

    def test_wrong_shard_redirect_payload(self):
        ((metadata, chunks),) = _encrypted_streams(1, 2)
        _store, router, shards = _sharded_deployment(3)
        try:
            table = router.table
            owner = table.owner_of(metadata.uuid)
            foreign = next(name for name in table.engine_names if name != owner)
            with RemoteServerClient(*shards[foreign].address, timeout=10.0) as direct:
                response = direct.call_many(
                    [Request("stream_head", {"uuid": metadata.uuid})]
                )[0]
                assert not response.ok
                assert response.error_type == "WrongShardError"
                assert response.result["owner"] == owner
                assert response.result["epoch"] == table.epoch
                assert tuple(response.result["address"]) == table.address_of(owner)
                # And the error registry re-raises it as the typed class.
                with pytest.raises(WrongShardError):
                    direct.stream_head(metadata.uuid)
        finally:
            _stop_all(router, shards)

    def test_router_proxies_routing_unaware_clients(self):
        _store, router, shards = _sharded_deployment(3)
        streams = _streams_spanning_owners(router.table, 4, 3)
        reference_engine = ServerEngine()
        try:
            # A plain RemoteServerClient that knows nothing about shards.
            with RemoteServerClient(*router.address, timeout=10.0) as plain:
                _replay(plain, streams)
                _replay(reference_engine, streams)
                grants = [
                    (metadata.uuid, "bob", b"sealed-" + metadata.uuid.encode())
                    for metadata, _chunks in streams
                ]
                assert plain.put_grants(grants) == reference_engine.put_grants(grants)
                full = TimeRange(0, 10 * CHUNK_INTERVAL)
                uuids = [metadata.uuid for metadata, _chunks in streams]
                # Multi-owner ops arrive whole and are split by the router.
                assert len({router.table.owner_of(u) for u in uuids}) > 1
                aggregate = plain.stat_range_multi(uuids, full)
                expected = reference_engine.stat_range_multi(uuids, full)
                assert aggregate == expected
                for metadata, _chunks in streams:
                    uuid = metadata.uuid
                    assert [
                        encode_encrypted_chunk(c) for c in plain.get_range(uuid, full)
                    ] == [
                        encode_encrypted_chunk(c)
                        for c in reference_engine.get_range(uuid, full)
                    ]
                    assert plain.fetch_grants(uuid, "bob") == reference_engine.fetch_grants(
                        uuid, "bob"
                    )
                with pytest.raises(StreamNotFoundError):
                    plain.stream_head("no-such-stream")
        finally:
            _stop_all(router, shards)


# ---------------------------------------------------------------------------
# Scan offload: wire round-trip budgets
# ---------------------------------------------------------------------------


@pytest.fixture()
def node():
    store = MemoryStore()
    with StorageNodeServer(store) as server:
        yield server


class TestScanOffload:
    def test_prefix_scan_round_trips(self, node):
        host, port = node.address
        remote = RemoteKeyValueStore(host, port, timeout=5.0)
        remote.multi_put([(f"s/{index:03d}".encode(), b"v" * 8) for index in range(100)])
        remote.wire_stats.reset()
        items = list(remote.scan_prefix(b"s/"))
        assert len(items) == 100
        assert remote.wire_stats.round_trips == 1  # one offloaded region
        remote.close()

    def test_scan_range_filters_node_side(self, node):
        host, port = node.address
        remote = RemoteKeyValueStore(host, port, timeout=5.0)
        remote.multi_put([(f"k/{index:03d}".encode(), bytes([index])) for index in range(40)])
        remote.wire_stats.reset()
        got = list(remote.scan_range(b"k/", b"k/005", b"k/012"))
        assert [key for key, _value in got] == [f"k/{i:03d}".encode() for i in range(5, 13)]
        assert [value for _key, value in got] == [bytes([i]) for i in range(5, 13)]
        assert remote.wire_stats.round_trips == 1
        # Legacy peers fall back to a client-side filter with equal results.
        legacy = RemoteKeyValueStore(host, port, timeout=5.0, prefix_ops=False)
        assert list(legacy.scan_range(b"k/", b"k/005", b"k/012")) == got
        remote.close()
        legacy.close()

    def test_delete_prefix_is_one_round_trip(self, node):
        host, port = node.address
        remote = RemoteKeyValueStore(host, port, timeout=5.0)
        remote.multi_put([(f"d/{index:03d}".encode(), b"x") for index in range(100)])
        remote.connect()
        remote.wire_stats.reset()
        assert remote.delete_prefixes([b"d/"]) == 100
        assert remote.wire_stats.round_trips == 1
        assert len(node.store) == 0
        remote.close()

    def test_legacy_delete_prefix_pages_the_keyspace(self, node):
        host, port = node.address
        legacy = RemoteKeyValueStore(host, port, timeout=5.0, prefix_ops=False, scan_page_size=8)
        legacy.multi_put([(f"d/{index:03d}".encode(), b"x") for index in range(64)])
        legacy.wire_stats.reset()
        assert legacy.delete_prefix(b"d/") == 64
        # 64 keys at 8 per page: the walk alone is 8 round trips, plus the
        # delete — exactly the O(keyspace) cost the offload removes.
        assert legacy.wire_stats.round_trips >= 8
        assert len(node.store) == 0
        legacy.close()

    def test_delete_stream_round_trips_independent_of_keyspace(self, node):
        host, port = node.address
        remote = RemoteKeyValueStore(host, port, timeout=5.0)
        engine = ServerEngine(store=remote, token_store=TokenStore(store=remote))
        small, large = _encrypted_streams(1, 2) + _encrypted_streams(1, 24)
        _replay(engine, [small, large])
        trips: List[int] = []
        for metadata, _chunks in (small, large):
            remote.wire_stats.reset()
            engine.delete_stream(metadata.uuid)
            trips.append(remote.wire_stats.round_trips)
        assert trips[0] == trips[1]  # 2 vs 24 chunks: identical wire cost
        assert trips[0] <= 4  # prefix erase + meta delete + grant erase
        assert len(node.store) == 0
        remote.close()


class TestClusterPrefixOps:
    def test_scan_range_merges_replicas(self):
        cluster = StorageCluster(num_nodes=3, replication_factor=2)
        cluster.multi_put([(f"k/{index:03d}".encode(), bytes([index])) for index in range(20)])
        got = list(cluster.scan_range(b"k/", b"k/004", b"k/011"))
        assert [key for key, _value in got] == [f"k/{i:03d}".encode() for i in range(4, 12)]

    def test_delete_prefix_erases_all_replicas(self):
        cluster = StorageCluster(num_nodes=3, replication_factor=2)
        cluster.multi_put([(f"p/{index}".encode(), b"v") for index in range(10)])
        cluster.multi_put([(b"other/0", b"keep")])
        deleted = cluster.delete_prefix(b"p/")
        assert deleted == 20  # physical count: 10 keys x 2 replicas
        assert list(cluster.scan_prefix(b"p/")) == []
        assert cluster.get(b"other/0") == b"keep"

    def test_delete_prefix_erases_parked_hints(self):
        cluster = StorageCluster(num_nodes=3, replication_factor=2)
        cluster.mark_down("node-2")
        cluster.multi_put([(f"h/{index}".encode(), b"v") for index in range(12)])
        hinted = [
            key
            for name in ("node-0", "node-1")
            for key, _value in cluster.node_store(name).scan_prefix(b"hint/node-2/h/")
        ]
        assert hinted  # the down node's replicas were parked as hints
        cluster.delete_prefix(b"h/")
        # Recovery must not resurrect erased keys from replayed hints.
        cluster.mark_up("node-2", replay_hints=True)
        assert list(cluster.scan_prefix(b"h/")) == []
        for name in cluster.node_names:
            assert list(cluster.node_store(name).scan_prefix(b"hint/")) == []

    def test_delete_prefix_guards(self):
        cluster = StorageCluster(num_nodes=2, replication_factor=1)
        with pytest.raises(ValueError):
            cluster.delete_prefix(b"")
        with pytest.raises(ValueError):
            cluster.delete_prefix(b"hint/node-0/")
        with pytest.raises(ValueError):
            cluster.delete_prefix(b"hi")  # would swallow the hint keyspace
        assert cluster.delete_prefixes([]) == 0


# ---------------------------------------------------------------------------
# Satellite: batched grant issuance
# ---------------------------------------------------------------------------


class _CountingPRG:
    def __init__(self, inner) -> None:
        self._inner = inner
        self.child_calls = 0

    def child(self, value: bytes, bit: int) -> bytes:
        self.child_calls += 1
        return self._inner.child(value, bit)

    def __getattr__(self, name):
        return getattr(self._inner, name)


def _counting_tree() -> Tuple[KeyDerivationTree, _CountingPRG]:
    tree = KeyDerivationTree(seed=b"\x17" * 16, height=16, prg="blake2", cache_levels=0)
    counter = _CountingPRG(tree._prg)
    tree._prg = counter
    return tree, counter


class TestBatchedGrantDerivation:
    def test_tokens_for_ranges_matches_scalar_path(self):
        tree = KeyDerivationTree(seed=b"\x17" * 16, height=16, prg="blake2")
        ranges = [(0, 64), (32, 96), (60, 61), (0, 65536)]
        batched = tree.tokens_for_ranges(ranges)
        assert batched == [tree.tokens_for_range(start, end) for start, end in ranges]

    def test_overlapping_ranges_share_the_traversal(self):
        ranges = [(100, 612), (100, 612), (104, 616), (96, 608)]
        tree, counter = _counting_tree()
        tree.tokens_for_ranges(ranges)
        batched_calls = counter.child_calls
        scalar_calls = 0
        for start, end in ranges:
            tree, counter = _counting_tree()
            tree.tokens_for_range(start, end)
            scalar_calls += counter.child_calls
        assert batched_calls < scalar_calls / 2  # shared cover nodes derive once

    def test_grant_many_uses_one_traversal(self):
        config = StreamConfig(chunk_interval=1_000, key_tree_height=16, index_fanout=4)
        identity_provider = IdentityProvider()
        manager = GrantManager(
            stream_uuid="stream-1",
            config=config,
            key_tree=KeyDerivationTree(seed=b"\x21" * 16, height=16, prg="blake2"),
            identity_provider=identity_provider,
            token_store=TokenStore(),
        )
        policies = []
        for index in range(5):
            principal = Principal.create(f"worker-{index}")
            identity_provider.register(principal)
            policies.append(
                AccessPolicy(
                    stream_uuid="stream-1",
                    principal_id=principal.principal_id,
                    time_range=TimeRange(0, 64_000 + index * 1_000),
                )
            )
        traversals: List[int] = []
        original = manager.key_tree.tokens_for_ranges

        def counting(ranges):
            traversals.append(len(ranges))
            return original(ranges)

        manager.key_tree.tokens_for_ranges = counting  # type: ignore[method-assign]
        grants = manager.grant_many(policies)
        assert [grant.grant_id for grant in grants] == [0] * 5
        assert traversals == [5]  # one shared traversal for the whole cohort


# ---------------------------------------------------------------------------
# Satellite: sorted-key-cache mixin
# ---------------------------------------------------------------------------


@pytest.fixture(params=["memory", "disk"])
def backend(request, tmp_path):
    if request.param == "memory":
        yield MemoryStore()
    else:
        store = AppendLogStore(tmp_path / "store.log")
        yield store
        store.close()


class TestSortedKeyCacheMixin:
    def test_every_mutation_invalidates(self, backend):
        backend.put(b"a/1", b"x")
        assert [key for key, _v in backend.scan_prefix(b"a/")] == [b"a/1"]
        backend.multi_put([(b"a/0", b"y"), (b"a/2", b"z")])
        assert [key for key, _v in backend.scan_prefix(b"a/")] == [b"a/0", b"a/1", b"a/2"]
        backend.delete(b"a/1")
        assert [key for key, _v in backend.scan_prefix(b"a/")] == [b"a/0", b"a/2"]
        backend.multi_delete([b"a/0"])
        assert [key for key, _v in backend.scan_prefix(b"a/")] == [b"a/2"]

    def test_cache_reused_between_scans(self, backend):
        backend.multi_put([(f"b/{i}".encode(), b"v") for i in range(8)])
        first = backend._keys_sorted()
        assert backend._keys_sorted() is first  # no mutation: same list object
        backend.put(b"b/9", b"v")
        assert backend._keys_sorted() is not first

    def test_default_scan_range_and_delete_prefix(self, backend):
        backend.multi_put([(f"c/{i:02d}".encode(), b"v") for i in range(10)])
        got = [key for key, _v in backend.scan_range(b"c/", b"c/03", b"c/06")]
        assert got == [b"c/03", b"c/04", b"c/05", b"c/06"]
        assert backend.delete_prefix(b"c/") == 10
        assert list(backend.scan_prefix(b"c/")) == []
