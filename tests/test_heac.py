"""Tests for HEAC: homomorphism, key cancelling, and access enforcement."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.heac import (
    HEACCipher,
    HEACCiphertext,
    MODULUS,
    aggregate,
    aggregate_componentwise,
    key_to_int,
)
from repro.crypto.keytree import DerivedKeystream, KeyDerivationTree
from repro.exceptions import DecryptionError

SEED = b"\x42" * 16


@pytest.fixture
def tree() -> KeyDerivationTree:
    return KeyDerivationTree(seed=SEED, height=16, prg="blake2")


@pytest.fixture
def cipher(tree) -> HEACCipher:
    return HEACCipher(tree)


class TestCiphertextAlgebra:
    def test_value_range_enforced(self):
        with pytest.raises(ValueError):
            HEACCiphertext(value=MODULUS, window_start=0, window_end=1)
        with pytest.raises(ValueError):
            HEACCiphertext(value=-1, window_start=0, window_end=1)

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            HEACCiphertext(value=0, window_start=3, window_end=3)

    def test_addition_requires_adjacency(self):
        a = HEACCiphertext(value=1, window_start=0, window_end=1)
        c = HEACCiphertext(value=1, window_start=2, window_end=3)
        with pytest.raises(ValueError):
            _ = a + c

    def test_addition_is_order_insensitive(self):
        a = HEACCiphertext(value=1, window_start=0, window_end=1)
        b = HEACCiphertext(value=2, window_start=1, window_end=2)
        assert (a + b) == (b + a)
        assert (a + b).window_start == 0 and (a + b).window_end == 2

    def test_add_scalar(self):
        a = HEACCiphertext(value=5, window_start=0, window_end=1)
        assert a.add_scalar(3).value == 8

    def test_key_to_int_requires_full_key(self):
        with pytest.raises(ValueError):
            key_to_int(b"short")


class TestEncryptDecrypt:
    def test_single_value_roundtrip(self, cipher):
        for window, value in [(0, 0), (1, 1), (5, 123456), (100, 2**63)]:
            assert cipher.decrypt(cipher.encrypt(value, window)) == value % MODULUS

    def test_ciphertext_hides_plaintext(self, cipher):
        assert cipher.encrypt(7, 0).value != 7

    def test_same_value_different_windows_differ(self, cipher):
        assert cipher.encrypt(42, 0).value != cipher.encrypt(42, 1).value

    def test_range_aggregation_needs_only_outer_keys(self, tree, cipher):
        values = [10, 20, 30, 40, 50, 60]
        ciphertexts = [cipher.encrypt(v, i) for i, v in enumerate(values)]
        total = aggregate(ciphertexts)
        assert cipher.decrypt(total) == sum(values)
        # A keystream holding only the two outer keys can decrypt the aggregate.
        outer_only = DerivedKeystream(
            tree.tokens_for_range(0, 1) + tree.tokens_for_range(6, 7), prg="blake2"
        )
        assert HEACCipher(outer_only).decrypt(total) == sum(values)

    def test_missing_outer_key_fails(self, tree, cipher):
        ciphertexts = [cipher.encrypt(v, i) for i, v in enumerate([1, 2, 3, 4])]
        total = aggregate(ciphertexts)
        partial = DerivedKeystream(tree.tokens_for_range(0, 3), prg="blake2")
        with pytest.raises(DecryptionError):
            HEACCipher(partial).decrypt(total)

    def test_aggregate_requires_contiguity(self, cipher):
        a = cipher.encrypt(1, 0)
        c = cipher.encrypt(3, 2)
        with pytest.raises(ValueError):
            aggregate([a, c])

    def test_aggregate_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate([])

    def test_decrypt_signed(self, cipher):
        negative = (-5) % MODULUS
        ciphertext = cipher.encrypt(negative, 3)
        assert cipher.decrypt_signed(ciphertext) == -5

    @given(st.lists(st.integers(min_value=0, max_value=2**40), min_size=1, max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_homomorphism_property(self, values):
        cipher = HEACCipher(KeyDerivationTree(seed=SEED, height=16, prg="blake2"))
        ciphertexts = [cipher.encrypt(v, i) for i, v in enumerate(values)]
        assert cipher.decrypt(aggregate(ciphertexts)) == sum(values) % MODULUS

    @given(st.integers(0, 1000), st.integers(0, 1000), st.integers(0, 200))
    @settings(max_examples=30, deadline=None)
    def test_partial_range_aggregation(self, a, b, offset):
        cipher = HEACCipher(KeyDerivationTree(seed=SEED, height=16, prg="blake2"))
        start, end = offset, offset + 5
        values = [a, b, a + b, a, b]
        ciphertexts = [cipher.encrypt(v, start + i) for i, v in enumerate(values)]
        middle = aggregate(ciphertexts[1:4])
        assert cipher.decrypt(middle) == sum(values[1:4]) % MODULUS


class TestVectorEncryption:
    def test_vector_roundtrip(self, cipher):
        values = [100, 17, 100 * 100, 0, 3]
        cells = cipher.encrypt_vector(values, 7)
        assert cipher.decrypt_vector(cells) == values

    def test_component_pads_are_independent(self, cipher):
        cells = cipher.encrypt_vector([5, 5, 5], 2)
        assert len({cell.value for cell in cells}) == 3

    def test_componentwise_aggregation(self, cipher):
        vectors = [[i, 1, i * i] for i in range(8)]
        encrypted = [cipher.encrypt_vector(vector, window) for window, vector in enumerate(vectors)]
        aggregated = aggregate_componentwise(encrypted)
        sums = cipher.decrypt_vector(aggregated)
        assert sums == [sum(v[0] for v in vectors), 8, sum(v[2] for v in vectors)]

    def test_componentwise_aggregation_rejects_mismatched_widths(self, cipher):
        a = cipher.encrypt_vector([1, 2], 0)
        b = cipher.encrypt_vector([1, 2, 3], 1)
        with pytest.raises(ValueError):
            aggregate_componentwise([a, b])

    def test_componentwise_aggregation_rejects_empty(self):
        with pytest.raises(ValueError):
            aggregate_componentwise([])

    def test_outer_pad_matches_decryption(self, cipher):
        values = [11, 22, 33]
        cells = [cipher.encrypt(v, i) for i, v in enumerate(values)]
        total = aggregate(cells)
        pad = cipher.outer_pad(0, 3)
        assert (total.value - pad) % MODULUS == sum(values)


class TestPayloadKeys:
    def test_payload_key_deterministic_and_per_window(self, cipher):
        assert cipher.chunk_payload_key(0) == cipher.chunk_payload_key(0)
        assert cipher.chunk_payload_key(0) != cipher.chunk_payload_key(1)

    def test_payload_key_length(self, cipher):
        assert len(cipher.chunk_payload_key(0)) == 16
        assert len(cipher.chunk_payload_key(0, length=32)) == 32

    def test_consumer_with_token_derives_same_payload_key(self, tree, cipher):
        tokens = tree.tokens_for_range(4, 9)
        consumer = HEACCipher(DerivedKeystream(tokens, prg="blake2"))
        assert consumer.chunk_payload_key(5) == cipher.chunk_payload_key(5)
