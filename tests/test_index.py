"""Tests for the k-ary aggregation index: planning, correctness, persistence, decay."""

from __future__ import annotations

import random
from typing import List

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import IndexError_, QueryError
from repro.index.cache import NodeCache
from repro.index.node import DigestCombiner, IndexNode, heac_combiner, plaintext_combiner
from repro.index.query import plan_range, worst_case_nodes
from repro.index.tree import AggregationIndex, levels_for
from repro.storage.memory import MemoryStore
from repro.util.encoding import pack_varint_list, unpack_varint_list


def _encode(cells) -> bytes:
    return pack_varint_list(cells)


def _decode(blob: bytes) -> List[int]:
    values, _pos = unpack_varint_list(blob, 0)
    return values


def _make_index(fanout: int = 4, store=None, cache=None) -> AggregationIndex:
    return AggregationIndex(
        stream_uuid="s",
        store=store if store is not None else MemoryStore(),
        combiner=plaintext_combiner(),
        encode_cells=_encode,
        decode_cells=_decode,
        fanout=fanout,
        cache=cache,
        max_windows=1 << 20,
    )


class TestIndexNode:
    def test_invalid_coordinates(self):
        with pytest.raises(IndexError_):
            IndexNode(level=-1, position=0, window_start=0, window_end=1, cells=(1,))
        with pytest.raises(IndexError_):
            IndexNode(level=0, position=0, window_start=5, window_end=5, cells=(1,))

    def test_combiner_vector_width_check(self):
        combiner = plaintext_combiner()
        with pytest.raises(IndexError_):
            combiner.combine_vectors([1], [1, 2])

    def test_combiner_sizes(self):
        assert heac_combiner().size_of(None) == 8
        custom = DigestCombiner(add=lambda a, b: a + b, size_of=len)
        assert custom.vector_size([b"ab", b"cde"]) == 5


class TestRangePlanning:
    def test_single_window(self):
        plan = plan_range(5, 6, fanout=4, max_level=5)
        assert plan.num_nodes == 1
        assert plan.nodes[0].level == 0

    def test_aligned_block_uses_single_node(self):
        plan = plan_range(0, 64, fanout=4, max_level=5)
        assert plan.num_nodes == 1
        assert plan.nodes[0].level == 3

    def test_max_level_caps_block_size(self):
        plan = plan_range(0, 64, fanout=4, max_level=2)
        assert all(node.level <= 2 for node in plan.nodes)
        assert plan.num_nodes == 4

    def test_invalid_ranges(self):
        with pytest.raises(QueryError):
            plan_range(5, 4, fanout=4, max_level=3)
        with pytest.raises(QueryError):
            plan_range(0, 4, fanout=1, max_level=3)

    def test_plan_tiles_range_exactly(self):
        plan = plan_range(3, 117, fanout=4, max_level=5)
        position = 3
        for node in plan.nodes:
            assert node.window_start == position
            position = node.window_end
        assert position == 117

    def test_worst_case_bound(self):
        assert worst_case_nodes(4, 1) == 1
        assert worst_case_nodes(64, 10**6) == 2 * 63 * 4

    @given(
        st.integers(0, 4000),
        st.integers(1, 500),
        st.sampled_from([2, 4, 16, 64]),
    )
    @settings(max_examples=60, deadline=None)
    def test_plan_size_within_worst_case(self, start, length, fanout):
        end = start + length
        max_level = levels_for(fanout, 1 << 20)
        plan = plan_range(start, end, fanout, max_level)
        # Exact tiling.
        position = start
        for node in plan.nodes:
            assert node.window_start == position
            assert node.window_end - node.window_start == fanout ** node.level
            position = node.window_end
        assert position == end
        assert plan.num_nodes <= worst_case_nodes(fanout, end) + 1


class TestLevelsFor:
    def test_levels(self):
        assert levels_for(64, 1) == 1
        assert levels_for(64, 64) == 1
        assert levels_for(64, 65) == 2
        assert levels_for(2, 1024) == 10


class TestAggregationIndex:
    def test_append_returns_window_indices(self):
        index = _make_index()
        assert index.append([1, 1]) == 0
        assert index.append([2, 1]) == 1
        assert index.num_windows == 2

    def test_query_empty_range_rejected(self):
        index = _make_index()
        index.append([1])
        with pytest.raises(QueryError):
            index.query_range(0, 0)

    def test_query_beyond_head_rejected(self):
        index = _make_index()
        index.append([1])
        with pytest.raises(QueryError):
            index.query_range(0, 2)

    def test_correctness_against_naive_sums(self):
        rng = random.Random(7)
        index = _make_index(fanout=4)
        values = []
        for _ in range(300):
            value = rng.randint(0, 1000)
            values.append(value)
            index.append([value, 1])
        for _ in range(100):
            a = rng.randint(0, len(values) - 1)
            b = rng.randint(a + 1, len(values))
            cells = index.query_range(a, b)
            assert cells[0] == sum(values[a:b])
            assert cells[1] == b - a

    def test_fanout_64_correctness(self):
        rng = random.Random(3)
        index = _make_index(fanout=64)
        values = [rng.randint(0, 99) for _ in range(200)]
        for value in values:
            index.append([value])
        assert index.query_range(0, 200)[0] == sum(values)
        assert index.query_range(63, 130)[0] == sum(values[63:130])

    def test_persistence_across_reopen(self):
        store = MemoryStore()
        index = _make_index(store=store)
        for value in range(50):
            index.append([value])
        reopened = _make_index(store=store)
        assert reopened.num_windows == 50
        assert reopened.query_range(10, 40)[0] == sum(range(10, 40))

    def test_small_cache_still_correct(self):
        cache = NodeCache(capacity_bytes=256)
        index = _make_index(fanout=4, cache=cache)
        values = list(range(200))
        for value in values:
            index.append([value])
        assert index.query_range(17, 193)[0] == sum(values[17:193])
        assert cache.stats.evictions > 0

    def test_cache_hits_on_repeated_queries(self):
        index = _make_index(fanout=4)
        for value in range(100):
            index.append([value])
        index.query_range(0, 100)
        hits_before = index.cache.stats.hits
        index.query_range(0, 100)
        assert index.cache.stats.hits > hits_before

    def test_plan_exposed(self):
        index = _make_index(fanout=4)
        for value in range(64):
            index.append([value])
        plan = index.plan(0, 64)
        assert plan.num_nodes == 1

    def test_missing_node_detected(self):
        store = MemoryStore()
        index = _make_index(fanout=4, store=store)
        for value in range(20):
            index.append([value])
        # Corrupt the store: remove a leaf node and clear the cache.
        store.delete(b"index/s/00/" + b"0" * 15 + b"3")
        index.cache.clear()
        with pytest.raises(IndexError_):
            index.query_range(3, 4)

    def test_size_and_node_count(self):
        index = _make_index(fanout=4)
        for value in range(16):
            index.append([value])
        assert index.node_count() >= 16
        assert index.size_bytes() > 0

    def test_prune_below_keeps_coarse_levels(self):
        index = _make_index(fanout=4)
        for value in range(64):
            index.append([value])
        deleted = index.prune_below(level=1, before_window=32)
        assert deleted == 32
        # Coarse aggregates over the pruned range still work.
        assert index.query_range(0, 64)[0] == sum(range(64))
        # Fine-grained access to the pruned range is gone.
        index.cache.clear()
        with pytest.raises(IndexError_):
            index.query_range(3, 4)

    def test_invalid_fanout(self):
        with pytest.raises(IndexError_):
            _make_index(fanout=1)

    @given(
        st.lists(st.integers(0, 10**6), min_size=1, max_size=150),
        st.sampled_from([2, 4, 8, 64]),
        st.data(),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_ranges_match_naive(self, values, fanout, data):
        index = _make_index(fanout=fanout)
        for value in values:
            index.append([value, 1])
        start = data.draw(st.integers(0, len(values) - 1))
        end = data.draw(st.integers(start + 1, len(values)))
        cells = index.query_range(start, end)
        assert cells[0] == sum(values[start:end])
        assert cells[1] == end - start
