"""Tests for hash chains and single/dual key regression."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.hashchain import HashChain, expand, next_state, state_key, walk
from repro.crypto.keyregression import (
    DualKeyRegression,
    DualKeyRegressionToken,
    KeyRegression,
)
from repro.exceptions import KeyDerivationError

SEED = b"\x07" * 16


class TestHashChainPrimitives:
    def test_expand_is_deterministic(self):
        assert expand(SEED) == expand(SEED)

    def test_expand_length(self):
        assert len(expand(SEED)) == 32

    def test_invalid_state_length(self):
        with pytest.raises(ValueError):
            expand(b"short")

    def test_state_and_key_halves_differ(self):
        assert next_state(SEED) != state_key(SEED)

    def test_walk(self):
        assert walk(SEED, 0) == SEED
        assert walk(SEED, 3) == next_state(next_state(next_state(SEED)))

    def test_walk_backwards_rejected(self):
        with pytest.raises(KeyDerivationError):
            walk(SEED, -1)


class TestHashChain:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            HashChain(b"short", 10)
        with pytest.raises(ValueError):
            HashChain(SEED, 0)
        with pytest.raises(ValueError):
            HashChain(SEED, 10, checkpoint_interval=0)

    def test_adjacent_states_are_hash_linked(self):
        chain = HashChain(SEED, 32, checkpoint_interval=4)
        for index in range(1, 32):
            assert chain.state(index - 1) == next_state(chain.state(index))

    def test_checkpoint_interval_does_not_change_states(self):
        dense = HashChain(SEED, 64, checkpoint_interval=1)
        sparse = HashChain(SEED, 64, checkpoint_interval=17)
        for index in (0, 1, 16, 17, 40, 63):
            assert dense.state(index) == sparse.state(index)

    def test_out_of_range_state(self):
        chain = HashChain(SEED, 8)
        with pytest.raises(KeyDerivationError):
            chain.state(8)
        with pytest.raises(KeyDerivationError):
            chain.state(-1)

    def test_keys_are_distinct(self):
        chain = HashChain(SEED, 32)
        keys = [chain.key(i) for i in range(32)]
        assert len(set(keys)) == 32

    def test_states_slice(self):
        chain = HashChain(SEED, 16)
        assert chain.states(3, 6) == [chain.state(i) for i in range(3, 6)]


class TestSingleKeyRegression:
    def test_state_grants_past_keys_only(self):
        regression = KeyRegression(seed=SEED, length=64)
        shared = regression.share_state(20)
        for index in (0, 7, 20):
            assert KeyRegression.derive_from_state(shared, 20, index) == regression.key(index)
        with pytest.raises(KeyDerivationError):
            KeyRegression.derive_from_state(shared, 20, 21)

    def test_random_seed_instances_differ(self):
        assert KeyRegression(length=8).key(0) != KeyRegression(length=8).key(0)


class TestDualKeyRegression:
    def test_token_bounds_validation(self):
        with pytest.raises(ValueError):
            DualKeyRegressionToken(
                lower=5, upper=3, primary_state=SEED, secondary_state=SEED, length=16
            )
        with pytest.raises(ValueError):
            DualKeyRegressionToken(
                lower=0, upper=16, primary_state=SEED, secondary_state=SEED, length=16
            )

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            DualKeyRegression(length=0)

    def test_keys_are_deterministic_and_distinct(self):
        regression = DualKeyRegression(primary_seed=SEED, secondary_seed=b"\x01" * 16, length=64)
        keys = regression.keys(0, 64)
        assert keys == regression.keys(0, 64)
        assert len(set(keys)) == 64

    def test_share_grants_exact_interval(self):
        regression = DualKeyRegression(length=128)
        token = regression.share(10, 30)
        for position in (10, 17, 30):
            assert DualKeyRegression.derive_from_token(token, position) == regression.key(position)
        for position in (9, 31, 0, 127):
            with pytest.raises(KeyDerivationError):
                DualKeyRegression.derive_from_token(token, position)

    def test_single_position_share(self):
        regression = DualKeyRegression(length=32)
        token = regression.share(5, 5)
        assert DualKeyRegression.derive_from_token(token, 5) == regression.key(5)
        with pytest.raises(KeyDerivationError):
            DualKeyRegression.derive_from_token(token, 6)

    def test_out_of_range_share_rejected(self):
        regression = DualKeyRegression(length=16)
        with pytest.raises(KeyDerivationError):
            regression.share(0, 16)
        with pytest.raises(KeyDerivationError):
            regression.share(10, 5)

    def test_out_of_range_key_rejected(self):
        regression = DualKeyRegression(length=16)
        with pytest.raises(KeyDerivationError):
            regression.key(16)

    @given(st.integers(0, 63), st.integers(0, 63), st.integers(0, 63))
    @settings(max_examples=30, deadline=None)
    def test_share_interval_property(self, a, b, probe):
        lower, upper = min(a, b), max(a, b)
        regression = DualKeyRegression(primary_seed=SEED, secondary_seed=b"\x02" * 16, length=64)
        token = regression.share(lower, upper)
        if lower <= probe <= upper:
            assert DualKeyRegression.derive_from_token(token, probe) == regression.key(probe)
        else:
            with pytest.raises(KeyDerivationError):
                DualKeyRegression.derive_from_token(token, probe)
