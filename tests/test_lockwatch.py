"""Runtime lock-order watchdog tests.

The AB/BA inversion tests drive :class:`WatchedLock` directly — no
install, no patched modules — so the acquisition graph is deterministic:
threads run strictly sequentially, yet the watchdog must still flag the
ordering inversion (that is its whole point: order bugs are detected
from nesting shape, not from an actual deadlock's timing).
"""

from __future__ import annotations

import concurrent.futures
import socket
import threading

import pytest

from repro.analysis import lockwatch
from repro.analysis.lockwatch import (
    LockWatcher,
    WatchedCondition,
    WatchedLock,
    install_from_env,
)


def _watched(watcher: LockWatcher, name: str, rlock: bool = False) -> WatchedLock:
    inner = threading.RLock() if rlock else threading.Lock()
    return WatchedLock(inner, name, watcher)


def _run_in_thread(fn) -> None:
    thread = threading.Thread(target=fn)
    thread.start()
    thread.join(timeout=10)
    assert not thread.is_alive()


class TestOrderingGraph:
    def test_ab_ba_inversion_detected_without_deadlock(self):
        watcher = LockWatcher()
        lock_a = _watched(watcher, "mod:1")
        lock_b = _watched(watcher, "mod:2")

        def forward():
            with lock_a:
                with lock_b:
                    pass

        def backward():
            with lock_b:
                with lock_a:
                    pass

        # Strictly sequential: the threads never contend, so a timing-based
        # detector would see nothing.  The order graph still gains a cycle.
        _run_in_thread(forward)
        _run_in_thread(backward)

        assert len(watcher.ordering_violations) == 1
        violation = watcher.ordering_violations[0]
        assert "lock-order inversion" in violation
        assert "mod:1" in violation and "mod:2" in violation

    def test_consistent_order_is_clean(self):
        watcher = LockWatcher()
        lock_a = _watched(watcher, "mod:1")
        lock_b = _watched(watcher, "mod:2")

        def nested():
            with lock_a:
                with lock_b:
                    pass

        for _ in range(3):
            _run_in_thread(nested)
        assert watcher.ordering_violations == []

    def test_three_lock_cycle_detected(self):
        watcher = LockWatcher()
        locks = {name: _watched(watcher, name) for name in ("l:1", "l:2", "l:3")}

        def nest(outer: str, inner: str):
            with locks[outer]:
                with locks[inner]:
                    pass

        nest("l:1", "l:2")
        nest("l:2", "l:3")
        assert watcher.ordering_violations == []
        nest("l:3", "l:1")  # closes 1 -> 2 -> 3 -> 1
        assert len(watcher.ordering_violations) == 1
        assert "l:1" in watcher.ordering_violations[0]
        assert "l:3" in watcher.ordering_violations[0]

    def test_same_site_nesting_is_observation_not_violation(self):
        watcher = LockWatcher()
        # Two distinct lock objects born at one construction site — e.g. two
        # connections' write locks.  Rank-equal: observed, never a violation.
        first = _watched(watcher, "conn:write")
        second = _watched(watcher, "conn:write")
        with first:
            with second:
                pass
        with second:
            with first:
                pass
        assert watcher.ordering_violations == []
        assert any("same-site lock nesting" in obs for obs in watcher.observations)

    def test_rlock_recursion_adds_no_edges(self):
        watcher = LockWatcher()
        lock = _watched(watcher, "mod:9", rlock=True)
        with lock:
            with lock:
                pass
        assert watcher.ordering_violations == []
        assert watcher.observations == []
        assert watcher._edges == {}

    def test_release_pops_correct_entry(self):
        watcher = LockWatcher()
        lock_a = _watched(watcher, "mod:1")
        lock_b = _watched(watcher, "mod:2")
        lock_a.acquire()
        lock_b.acquire()
        lock_a.release()  # out-of-order release must not corrupt the stack
        assert watcher.holding() == "mod:2"
        lock_b.release()
        assert watcher.holding() is None


class TestBlockingObservations:
    def test_note_blocking_only_while_holding(self):
        watcher = LockWatcher()
        watcher.note_blocking("socket.sendall()")
        assert watcher.observations == []
        lock = _watched(watcher, "mod:3")
        with lock:
            watcher.note_blocking("socket.sendall()")
        assert len(watcher.observations) == 1
        assert "while holding mod:3" in watcher.observations[0]

    def test_condition_tracks_acquire_release(self):
        watcher = LockWatcher()
        cond = WatchedCondition(threading.Condition(), "mod:cond", watcher)
        with cond:
            assert watcher.holding() == "mod:cond"
            cond.wait(timeout=0.01)
            assert watcher.holding() == "mod:cond"
        assert watcher.holding() is None
        assert watcher.ordering_violations == []


class TestInstallUninstall:
    def test_install_swaps_module_threading_and_uninstall_restores(self):
        if lockwatch.active_watcher() is not None:
            pytest.skip("a process-global watcher owns the patches")
        import repro.storage.memory as memory_module

        watcher = LockWatcher()
        orig_result = concurrent.futures.Future.result
        orig_sendall = socket.socket.sendall
        watcher.install()
        try:
            assert memory_module.threading is not threading
            lock = memory_module.threading.Lock()
            assert isinstance(lock, WatchedLock)
            # Named by construction site in *this* module.
            assert "test_lockwatch" in lock._name and lock._name.rpartition(":")[2].isdigit()
            assert concurrent.futures.Future.result is not orig_result
            assert socket.socket.sendall is not orig_sendall
        finally:
            watcher.uninstall()
        assert memory_module.threading is threading
        assert concurrent.futures.Future.result is orig_result
        assert socket.socket.sendall is orig_sendall

    def test_future_result_under_watched_lock_is_observed(self):
        if lockwatch.active_watcher() is not None:
            pytest.skip("a process-global watcher owns the patches")
        watcher = LockWatcher()
        watcher.install()
        try:
            lock = _watched(watcher, "mod:pool")
            pool = concurrent.futures.ThreadPoolExecutor(max_workers=1)
            try:
                with lock:
                    assert pool.submit(lambda: 41 + 1).result() == 42
            finally:
                pool.shutdown(wait=True)
        finally:
            watcher.uninstall()
        assert any(
            "Future.result() while holding mod:pool" in obs for obs in watcher.observations
        )
        assert watcher.ordering_violations == []

    def test_install_from_env_disabled_values(self):
        for value in (None, "", "0", "false", " 0 "):
            assert install_from_env(value) is None

    def test_report_summarises(self):
        watcher = LockWatcher()
        lock_a = _watched(watcher, "r:1")
        lock_b = _watched(watcher, "r:2")
        with lock_a:
            with lock_b:
                pass
        with lock_b:
            with lock_a:
                pass
        report = watcher.report()
        assert "1 ordering violation(s)" in report
        assert "lock-order inversion" in report


class TestClusterStress:
    def test_cluster_workload_has_zero_ordering_violations(self):
        if lockwatch.active_watcher() is not None:
            pytest.skip("a process-global watcher owns the patches")
        watcher = LockWatcher()
        watcher.install()
        try:
            # Construct AFTER install so every lock the cluster takes is watched.
            from repro.storage.cluster import StorageCluster

            cluster = StorageCluster(num_nodes=3, replication_factor=2)
            try:
                errors = []

                def worker(base: int):
                    try:
                        for index in range(40):
                            key = f"k-{base}-{index}".encode()
                            cluster.put(key, b"v" * 32)
                            assert cluster.get(key) == b"v" * 32
                    except Exception as exc:  # pragma: no cover - surfaced below
                        errors.append(exc)

                threads = [threading.Thread(target=worker, args=(base,)) for base in range(4)]
                for thread in threads:
                    thread.start()
                # A live membership change while writers run: the rebalance
                # path nests the membership lock over the fan-out pool.
                cluster.add_node()
                for thread in threads:
                    thread.join(timeout=30)
                    assert not thread.is_alive()
                assert errors == []
            finally:
                cluster.close()
        finally:
            watcher.uninstall()
        assert watcher.ordering_violations == [], watcher.report()
