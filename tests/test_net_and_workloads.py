"""Tests for the wire protocol, the TCP transport, and the workload generators."""

from __future__ import annotations

import io

import pytest

from repro import ServerEngine, TimeCrypt, TimeCryptConsumer, Principal
from repro.exceptions import ProtocolError, StreamNotFoundError, TransportError
from repro.net.client import RemoteServerClient
from repro.net.framing import MAX_FRAME_BYTES, read_frame, write_frame
from repro.net.messages import Request, Response
from repro.net.server import RequestDispatcher, TimeCryptTCPServer
from repro.workloads.devops import CPU_METRICS, DevOpsWorkload
from repro.workloads.generator import LoadGenerator
from repro.workloads.mhealth import METRICS, MHealthWorkload


class TestFraming:
    def test_roundtrip_over_stream(self):
        buffer = io.BytesIO()
        write_frame(buffer, b"hello world")
        buffer.seek(0)
        assert read_frame(buffer) == b"hello world"

    def test_bad_magic_rejected(self):
        buffer = io.BytesIO(b"XX\x00\x00\x00\x01a")
        with pytest.raises(ProtocolError):
            read_frame(buffer)

    def test_truncated_frame_rejected(self):
        buffer = io.BytesIO()
        write_frame(buffer, b"hello")
        data = buffer.getvalue()[:-2]
        with pytest.raises(TransportError):
            read_frame(io.BytesIO(data))

    def test_oversized_frame_rejected(self):
        with pytest.raises(ProtocolError):
            write_frame(io.BytesIO(), b"x" * (MAX_FRAME_BYTES + 1))


class TestMessages:
    def test_request_roundtrip_with_attachments(self):
        request = Request("insert_chunk", {"uuid": "s"}, [b"blob-1", b"blob-2"])
        decoded = Request.decode(request.encode())
        assert decoded.operation == "insert_chunk"
        assert decoded.args == {"uuid": "s"}
        assert decoded.attachments == [b"blob-1", b"blob-2"]

    def test_unknown_operation_rejected(self):
        with pytest.raises(ProtocolError):
            Request("drop_table", {})

    def test_response_roundtrip(self):
        response = Response.success({"value": 42}, [b"payload"])
        decoded = Response.decode(response.encode())
        assert decoded.ok and decoded.result == {"value": 42} and decoded.attachments == [b"payload"]

    def test_failure_response_carries_error_type(self):
        response = Response.failure(StreamNotFoundError("nope"))
        decoded = Response.decode(response.encode())
        assert not decoded.ok
        assert decoded.error_type == "StreamNotFoundError"

    def test_malformed_message_rejected(self):
        with pytest.raises(ProtocolError):
            Request.decode(b"\x05xxxxx")


class TestDispatcher:
    def test_ping(self):
        dispatcher = RequestDispatcher(ServerEngine())
        assert dispatcher.dispatch(Request("ping")).result == {"pong": True}

    def test_error_translated_to_failure_response(self):
        dispatcher = RequestDispatcher(ServerEngine())
        response = dispatcher.dispatch(Request("stream_head", {"uuid": "missing"}))
        assert not response.ok
        assert response.error_type == "StreamNotFoundError"

    def test_unsupported_operation(self):
        dispatcher = RequestDispatcher(ServerEngine())
        request = Request("ping")
        request.operation = "stat_range_multi"
        request.args = {"uuids": [], "start": 0, "end": 1}
        response = dispatcher.dispatch(request)
        assert not response.ok


class TestTCPTransport:
    def test_full_pipeline_over_tcp(self, small_config):
        engine = ServerEngine()
        with TimeCryptTCPServer(engine) as tcp_server:
            host, port = tcp_server.address
            with RemoteServerClient(host, port) as remote:
                assert remote.ping()
                owner = TimeCrypt(server=remote, owner_id="alice")
                uuid = owner.create_stream(metric="hr", config=small_config)
                records = [(t, float(50 + t % 40)) for t in range(0, 20_000, 100)]
                owner.insert_records(uuid, records)
                owner.flush(uuid)

                assert remote.stream_head(uuid) == 20
                stats = owner.get_stat_range(uuid, 0, 20_000, operators=("sum", "count", "mean"))
                assert stats["count"] == len(records)

                points = owner.get_range(uuid, 0, 5_000)
                assert len(points) == 50

                # Grants and consumer pickup also work across the wire.
                bob = Principal.create("bob")
                owner.register_principal(bob)
                owner.grant_access(uuid, "bob", 0, 10_000)
                consumer = TimeCryptConsumer(server=remote, principal=bob)
                consumer.fetch_access(uuid, small_config)
                consumer_stats = consumer.get_stat_range(uuid, 0, 10_000, operators=("count",))
                assert consumer_stats["count"] == 100

    def test_remote_error_propagation(self):
        engine = ServerEngine()
        with TimeCryptTCPServer(engine) as tcp_server:
            host, port = tcp_server.address
            with RemoteServerClient(host, port) as remote:
                with pytest.raises(StreamNotFoundError):
                    remote.stream_head("missing-stream")


class TestMHealthWorkload:
    def test_twelve_metrics(self):
        assert len(METRICS) == 12
        assert set(MHealthWorkload.metric_names()) == set(METRICS)

    def test_deterministic_for_same_seed(self):
        a = list(MHealthWorkload(seed=5).records("heart_rate", 10))
        b = list(MHealthWorkload(seed=5).records("heart_rate", 10))
        assert a == b

    def test_sampling_rate_and_timestamps(self):
        workload = MHealthWorkload(seed=1)
        records = list(workload.records("spo2", 2))
        assert len(records) == 2 * workload.sample_hz
        assert records[1][0] - records[0][0] == 1000 // workload.sample_hz

    def test_unknown_metric_rejected(self):
        with pytest.raises(KeyError):
            list(MHealthWorkload().records("blood_sugar", 1))

    def test_points_are_fixed_point_encoded(self):
        workload = MHealthWorkload(seed=2)
        points = workload.points("heart_rate", 1)
        assert all(isinstance(p.value, int) for p in points)

    def test_stream_config_histogram_brackets_baseline(self):
        config = MHealthWorkload.stream_config("heart_rate")
        assert config.digest.histogram.num_bins == 8
        assert config.chunk_interval == 10_000

    def test_sizing_helpers(self):
        workload = MHealthWorkload()
        assert workload.records_per_chunk() == 500
        assert workload.chunks_for_duration(3600) == 360

    def test_values_physiologically_bounded(self):
        workload = MHealthWorkload(seed=3)
        values = [v for _, v in workload.records("spo2", 30)]
        assert all(80 <= v <= 110 for v in values)


class TestDevOpsWorkload:
    def test_ten_metrics_and_hosts(self):
        workload = DevOpsWorkload(num_hosts=10)
        assert len(CPU_METRICS) == 10
        assert len(workload.host_names()) == 10
        assert len(workload.stream_names()) == 100

    def test_utilisation_bounded(self):
        workload = DevOpsWorkload(num_hosts=3, seed=2)
        for host in range(3):
            assert all(0 <= v <= 100 for _, v in workload.records(host, 600))

    def test_deterministic(self):
        a = list(DevOpsWorkload(num_hosts=2, seed=9).records(1, 300))
        b = list(DevOpsWorkload(num_hosts=2, seed=9).records(1, 300))
        assert a == b

    def test_unknown_host_rejected(self):
        with pytest.raises(KeyError):
            list(DevOpsWorkload(num_hosts=2).records(5, 10))

    def test_records_per_chunk(self):
        assert DevOpsWorkload().records_per_chunk() == 6

    def test_fleet_records(self):
        fleet = DevOpsWorkload(num_hosts=5).fleet_records(60, num_hosts=2)
        assert set(fleet) == {"host_0000", "host_0001"}


class TestLoadGenerator:
    def test_report_against_timecrypt(self, small_config):
        server = ServerEngine()
        owner = TimeCrypt(server=server, owner_id="o")
        uuid = owner.create_stream(config=small_config)
        records = [(t, float(t % 30)) for t in range(0, 10_000, 50)]
        generator = LoadGenerator(
            store=owner,
            stream_records={uuid: records},
            read_write_ratio=2,
            chunk_interval=small_config.chunk_interval,
        )
        report = generator.run(label="timecrypt")
        assert report.records_written == len(records)
        assert report.chunks_flushed == 10
        assert report.queries_executed > 0
        assert report.ingest_throughput > 0
        row = report.as_row()
        assert row["label"] == "timecrypt"

    def test_batch_knob_matches_scalar_replay(self, small_config):
        """ingest_batch_size > 1 replays through insert_records with identical data."""
        records = [(t, float(t % 30)) for t in range(0, 10_000, 50)]
        reports = {}
        owners = {}
        for batch_size in (1, 64):
            server = ServerEngine()
            owner = TimeCrypt(server=server, owner_id="o")
            uuid = owner.create_stream(config=small_config, uuid="gen-batch")
            generator = LoadGenerator(
                store=owner,
                stream_records={uuid: records},
                read_write_ratio=2,
                chunk_interval=small_config.chunk_interval,
                ingest_batch_size=batch_size,
            )
            reports[batch_size] = generator.run(label=f"batch-{batch_size}")
            owners[batch_size] = (owner, uuid)
        assert reports[64].records_written == reports[1].records_written == len(records)
        assert reports[64].chunks_flushed >= 1
        assert reports[64].queries_executed > 0
        # Both replays leave the server answering identical statistics.
        answers = {
            batch_size: owner.get_stat_range(uuid, 0, records[-1][0] + 1)
            for batch_size, (owner, uuid) in owners.items()
        }
        assert answers[1] == answers[64]

    def test_batch_knob_validation(self, small_config):
        server = ServerEngine()
        owner = TimeCrypt(server=server, owner_id="o")
        uuid = owner.create_stream(config=small_config)
        with pytest.raises(ValueError):
            LoadGenerator(store=owner, stream_records={uuid: []}, ingest_batch_size=0)

    def test_latency_summary_percentiles(self):
        from repro.workloads.generator import LatencySummary

        summary = LatencySummary.of([0.001 * i for i in range(1, 101)])
        assert summary.count == 100
        assert summary.p50_ms == pytest.approx(50, rel=0.1)
        assert summary.p99_ms >= summary.p95_ms >= summary.p50_ms
        assert LatencySummary.of([]).count == 0
