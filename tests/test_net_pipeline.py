"""Tests for the pipelined v2 wire protocol and its batch fast paths.

Covers the framing v2 header and incremental assembler, out-of-order
response correlation, ``call_many``/``pipeline()`` batching, mid-batch
error isolation, v1 interop and ``hello`` negotiation (including the
fallback against a v1-only lockstep server), concurrent clients against
the bounded-worker-pool server, thread-pooled cluster fan-out fault paths,
and the batched token-store / grant-burst plumbing.
"""

from __future__ import annotations

import io
import socket
import threading
import time
from typing import Optional

import pytest

from repro import Principal, ServerEngine, TimeCrypt, TimeCryptConsumer
from repro.access.keystore import TokenStore
from repro.crypto.heac import HEACCipher
from repro.crypto.keytree import KeyDerivationTree
from repro.exceptions import (
    PartitionError,
    ProtocolError,
    StorageError,
    StreamNotFoundError,
    TimeCryptError,
    TransportError,
)
from repro.net.client import RemoteServerClient
from repro.net.framing import (
    Frame,
    FrameAssembler,
    encode_frame,
    encode_frame_v2,
    read_any_frame,
    read_frame,
    write_frame,
    write_frame_v2,
)
from repro.net.messages import Request, Response
from repro.net.server import RequestDispatcher, TimeCryptTCPServer
from repro.storage.cluster import StorageCluster
from repro.storage.memory import MemoryStore
from repro.util.timeutil import TimeRange


class TestFramingV2:
    def test_v2_roundtrip_over_stream(self):
        buffer = io.BytesIO()
        write_frame_v2(buffer, 0xDEADBEEF, b"payload")
        buffer.seek(0)
        frame = read_any_frame(buffer)
        assert frame == Frame(version=2, correlation_id=0xDEADBEEF, payload=b"payload")

    def test_read_any_frame_accepts_v1(self):
        buffer = io.BytesIO()
        write_frame(buffer, b"legacy")
        buffer.seek(0)
        frame = read_any_frame(buffer)
        assert frame.version == 1 and frame.correlation_id == 0 and frame.payload == b"legacy"

    def test_correlation_id_range_checked(self):
        with pytest.raises(ProtocolError):
            encode_frame_v2(1 << 64, b"")
        with pytest.raises(ProtocolError):
            encode_frame_v2(-1, b"")

    def test_bad_magic_rejected(self):
        with pytest.raises(ProtocolError):
            read_any_frame(io.BytesIO(b"XX\x00\x00\x00\x00\x00"))

    def test_assembler_reassembles_byte_by_byte(self):
        wire = (
            encode_frame_v2(7, b"first")
            + encode_frame(b"legacy")
            + encode_frame_v2(9, b"third")
        )
        assembler = FrameAssembler()
        frames = []
        for index in range(len(wire)):
            frames.extend(assembler.feed(wire[index : index + 1]))
        assert [(f.version, f.correlation_id, f.payload) for f in frames] == [
            (2, 7, b"first"),
            (1, 0, b"legacy"),
            (2, 9, b"third"),
        ]

    def test_assembler_returns_multiple_frames_per_feed(self):
        wire = encode_frame_v2(1, b"a") + encode_frame_v2(2, b"b")
        frames = FrameAssembler().feed(wire)
        assert [frame.correlation_id for frame in frames] == [1, 2]

    def test_assembler_rejects_garbage(self):
        with pytest.raises(ProtocolError):
            FrameAssembler().feed(b"nonsense")


class _SlowPingDispatcher(RequestDispatcher):
    """A dispatcher whose ping can be told to sleep — for reordering tests."""

    def _op_ping(self, request: Request) -> Response:
        delay_ms = request.args.get("sleep_ms", 0)
        if delay_ms:
            time.sleep(delay_ms / 1000.0)
        return Response.success({"pong": True, "slept_ms": delay_ms})


class TestPipelinedTransport:
    def test_hello_negotiates_v2_and_operations(self):
        engine = ServerEngine()
        with TimeCryptTCPServer(engine) as server:
            host, port = server.address
            with RemoteServerClient(host, port) as remote:
                assert remote.protocol_version == 2
                assert remote.supports_operation("insert_chunks")
                assert remote.supports_operation("put_grants")
                assert not remote.supports_operation("drop_everything")
                assert remote.ping()

    def test_out_of_order_responses_correlate(self):
        """A fast request overtakes a slow one on the same connection."""
        engine = ServerEngine()
        dispatcher = _SlowPingDispatcher(engine)
        with TimeCryptTCPServer(engine, dispatcher=dispatcher) as server:
            host, port = server.address
            with RemoteServerClient(host, port) as remote:
                slow = remote._send_requests([Request("ping", {"sleep_ms": 500})])[0]
                fast = remote._send_requests([Request("ping")])[0]
                fast_response = fast.result(timeout=5)
                assert fast_response.result["slept_ms"] == 0
                # The fast response arrived while the slow request was still
                # in flight — responses really are matched by correlation id,
                # not arrival order.
                assert not slow.done()
                assert slow.result(timeout=5).result["slept_ms"] == 500

    def test_call_many_is_one_round_trip(self, small_config):
        engine = ServerEngine()
        with TimeCryptTCPServer(engine) as server:
            host, port = server.address
            with RemoteServerClient(host, port) as remote:
                owner = TimeCrypt(server=remote, owner_id="alice")
                uuid = owner.create_stream(metric="hr", config=small_config)
                owner.insert_records(uuid, [(t, 1.0) for t in range(0, 5_000, 100)])
                owner.flush(uuid)
                remote.wire_stats.reset()
                responses = remote.call_many(
                    [
                        Request("ping"),
                        Request("stream_head", {"uuid": uuid}),
                        Request("stat_range", {"uuid": uuid, "start": 0, "end": 5_000}),
                    ]
                )
                assert [response.ok for response in responses] == [True, True, True]
                assert responses[1].result["head"] == 5
                assert remote.wire_stats.round_trips == 1
                assert remote.wire_stats.requests_sent == 3

    def test_pipeline_context_flushes_one_batch(self, small_config):
        engine = ServerEngine()
        with TimeCryptTCPServer(engine) as server:
            host, port = server.address
            with RemoteServerClient(host, port) as remote:
                owner = TimeCrypt(server=remote, owner_id="alice")
                uuid = owner.create_stream(metric="hr", config=small_config)
                owner.insert_records(uuid, [(t, 2.0) for t in range(0, 3_000, 100)])
                owner.flush(uuid)
                remote.wire_stats.reset()
                with remote.pipeline() as batch:
                    pong = batch.ping()
                    head = batch.stream_head(uuid)
                    chunks = batch.get_range(uuid, TimeRange(0, 3_000))
                    metadata = batch.stream_metadata(uuid)
                assert pong.result() is True
                assert head.result() == 3
                assert len(chunks.result()) == 3
                assert metadata.result().uuid == uuid
                assert remote.wire_stats.round_trips == 1
                assert remote.wire_stats.batches_sent == 1

    def test_pipeline_flush_failure_fails_handles_with_cause(self):
        """A transport failure during flush surfaces from result(), typed."""
        engine = ServerEngine()
        server = TimeCryptTCPServer(engine).start()
        host, port = server.address
        remote = RemoteServerClient(host, port, timeout=5.0)
        try:
            batch = remote.pipeline()
            handle = batch.ping()
            server.stop()  # kill the peer mid-pipeline
            with pytest.raises(TransportError):
                batch.flush()
            with pytest.raises(TransportError):
                handle.result()
            # The failed batch was cleared; flushing again is a no-op.
            batch.flush()
        finally:
            remote.close()
            server.stop()

    def test_pipeline_result_before_flush_raises(self):
        engine = ServerEngine()
        with TimeCryptTCPServer(engine) as server:
            host, port = server.address
            with RemoteServerClient(host, port) as remote:
                batch = remote.pipeline()
                handle = batch.ping()
                with pytest.raises(ProtocolError):
                    handle.result()
                batch.flush()
                assert handle.result() is True

    def test_mid_batch_error_surfaces_right_subclass(self, small_config):
        """One failed request in a batch raises its own typed error; the rest succeed."""
        engine = ServerEngine()
        with TimeCryptTCPServer(engine) as server:
            host, port = server.address
            with RemoteServerClient(host, port) as remote:
                owner = TimeCrypt(server=remote, owner_id="alice")
                uuid = owner.create_stream(metric="hr", config=small_config)
                owner.insert_records(uuid, [(t, 1.0) for t in range(0, 2_000, 100)])
                owner.flush(uuid)
                with remote.pipeline() as batch:
                    good_head = batch.stream_head(uuid)
                    bad_head = batch.stream_head("no-such-stream")
                    pong = batch.ping()
                assert good_head.result() == 2
                assert pong.result() is True
                with pytest.raises(StreamNotFoundError):
                    bad_head.result()

    def test_ingest_batch_and_range_query_round_trips(self, small_config):
        """Acceptance: an N-chunk ingest batch and a range read cost ≤2 round trips."""
        engine = ServerEngine()
        with TimeCryptTCPServer(engine) as server:
            host, port = server.address
            with RemoteServerClient(host, port) as remote:
                owner = TimeCrypt(server=remote, owner_id="alice")
                uuid = owner.create_stream(metric="hr", config=small_config)
                records = [(t, float(t % 17)) for t in range(0, 32_000, 100)]
                remote.wire_stats.reset()
                owner.insert_records(uuid, records)  # seals 31 chunks in one batch
                owner.flush(uuid)  # seals the open 32nd chunk
                assert remote.wire_stats.round_trips <= 2
                assert remote.stream_head(uuid) == 32
                remote.wire_stats.reset()
                chunks = remote.get_range(uuid, TimeRange(0, 32_000))
                assert len(chunks) == 32
                assert remote.wire_stats.round_trips == 1

    def test_concurrent_clients_hammer_one_server(self, small_config):
        """Many client connections share the bounded dispatch pool correctly."""
        engine = ServerEngine()
        errors = []

        def one_client(index: int, host: str, port: int) -> None:
            try:
                with RemoteServerClient(host, port) as remote:
                    owner = TimeCrypt(server=remote, owner_id=f"owner-{index}")
                    uuid = owner.create_stream(
                        metric="hr", config=small_config, uuid=f"hammer-{index}"
                    )
                    records = [(t, float(index)) for t in range(0, 8_000, 100)]
                    owner.insert_records(uuid, records)
                    owner.flush(uuid)
                    stats = owner.get_stat_range(uuid, 0, 8_000, operators=("count", "sum"))
                    assert stats["count"] == len(records)
                    assert stats["sum"] == pytest.approx(index * len(records))
            except Exception as exc:  # noqa: BLE001 - surfaced via the errors list
                errors.append((index, exc))

        with TimeCryptTCPServer(engine, max_workers=4) as server:
            host, port = server.address
            threads = [
                threading.Thread(target=one_client, args=(index, host, port))
                for index in range(6)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
        assert not errors, f"client failures: {errors}"
        assert sorted(engine.list_streams()) == [f"hammer-{index}" for index in range(6)]

    def test_one_connection_shared_by_many_threads(self, small_config):
        """The multiplexed client is thread-safe without external locking."""
        engine = ServerEngine()
        with TimeCryptTCPServer(engine) as server:
            host, port = server.address
            with RemoteServerClient(host, port) as remote:
                owner = TimeCrypt(server=remote, owner_id="alice")
                uuid = owner.create_stream(metric="hr", config=small_config)
                owner.insert_records(uuid, [(t, 3.0) for t in range(0, 4_000, 100)])
                owner.flush(uuid)
                results = []
                errors = []

                def probe() -> None:
                    try:
                        for _ in range(20):
                            results.append(remote.stream_head(uuid))
                    except Exception as exc:  # noqa: BLE001
                        errors.append(exc)

                threads = [threading.Thread(target=probe) for _ in range(8)]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(timeout=30)
                assert not errors
                assert results == [4] * (8 * 20)


class _V1OnlyServer:
    """A lockstep v1-only peer: rejects v2 frames by dropping the connection."""

    def __init__(self, engine: ServerEngine) -> None:
        self._dispatcher = RequestDispatcher(engine)
        self._listener = socket.create_server(("127.0.0.1", 0))
        self._thread: Optional[threading.Thread] = None
        self._running = False

    @property
    def address(self):
        return self._listener.getsockname()

    def __enter__(self) -> "_V1OnlyServer":
        self._running = True
        self._thread = threading.Thread(target=self._accept_loop, daemon=True)
        self._thread.start()
        return self

    def __exit__(self, *_exc_info: object) -> None:
        self._running = False
        self._listener.close()
        if self._thread is not None:
            self._thread.join(timeout=5)

    def _accept_loop(self) -> None:
        while self._running:
            try:
                sock, _address = self._listener.accept()
            except OSError:
                return
            threading.Thread(target=self._serve, args=(sock,), daemon=True).start()

    def _serve(self, sock: socket.socket) -> None:
        with sock:
            while True:
                try:
                    payload = read_frame(sock)
                except (TimeCryptError, OSError):
                    return  # v2 magic or EOF: a v1-only peer just hangs up
                try:
                    response = self._dispatcher.dispatch(Request.decode(payload))
                except TimeCryptError as exc:
                    response = Response.failure(exc)
                try:
                    write_frame(sock, response.encode())
                except OSError:
                    return


class TestVersionInterop:
    def test_v1_client_against_new_server(self, small_config):
        """A forced-v1 lockstep client gets correct results from the v2 server."""
        engine = ServerEngine()
        with TimeCryptTCPServer(engine) as server:
            host, port = server.address
            with RemoteServerClient(host, port, protocol_version=1) as remote:
                assert remote.protocol_version == 1
                owner = TimeCrypt(server=remote, owner_id="alice")
                uuid = owner.create_stream(metric="hr", config=small_config)
                records = [(t, float(50 + t % 40)) for t in range(0, 10_000, 100)]
                owner.insert_records(uuid, records)
                owner.flush(uuid)
                assert remote.stream_head(uuid) == 10
                stats = owner.get_stat_range(uuid, 0, 10_000, operators=("count", "sum"))
                assert stats["count"] == len(records)
                # Lockstep: every request was its own round trip.
                assert remote.wire_stats.round_trips == remote.wire_stats.requests_sent

    def test_raw_v1_frames_against_new_server(self):
        """A hand-rolled v1 exchange (no client class) still works."""
        engine = ServerEngine()
        with TimeCryptTCPServer(engine) as server:
            host, port = server.address
            with socket.create_connection((host, port), timeout=10) as sock:
                write_frame(sock, Request("ping").encode())
                response = Response.decode(read_frame(sock))
                assert response.ok and response.result["pong"] is True

    def test_v1_responses_stay_in_request_order(self):
        """Pipelined v1 frames must be answered strictly in order."""
        engine = ServerEngine()
        dispatcher = _SlowPingDispatcher(engine)
        with TimeCryptTCPServer(engine, dispatcher=dispatcher) as server:
            host, port = server.address
            with socket.create_connection((host, port), timeout=10) as sock:
                # Two v1 requests back to back: the first sleeps, the second
                # does not.  The slow response must still arrive first.
                sock.sendall(
                    encode_frame(Request("ping", {"sleep_ms": 300}).encode())
                    + encode_frame(Request("ping").encode())
                )
                first = Response.decode(read_frame(sock))
                second = Response.decode(read_frame(sock))
                assert first.result["slept_ms"] == 300
                assert second.result["slept_ms"] == 0

    def test_negotiation_falls_back_to_v1_only_peer(self, small_config):
        """Against a v1-only lockstep server the client downgrades and works."""
        engine = ServerEngine()
        with _V1OnlyServer(engine) as server:
            host, port = server.address
            with RemoteServerClient(host, port) as remote:
                assert remote.protocol_version == 1
                owner = TimeCrypt(server=remote, owner_id="alice")
                uuid = owner.create_stream(metric="hr", config=small_config)
                owner.insert_records(uuid, [(t, 1.0) for t in range(0, 3_000, 100)])
                owner.flush(uuid)
                assert remote.stream_head(uuid) == 3
                stats = owner.get_stat_range(uuid, 0, 3_000, operators=("count",))
                assert stats["count"] == 30

    def test_unknown_protocol_version_rejected(self):
        with pytest.raises(ProtocolError):
            RemoteServerClient("127.0.0.1", 1, protocol_version=3)

    def test_negotiation_timeout_raises_instead_of_downgrading(self):
        """A silent peer (slow, not v1) must raise, not pin the session to v1."""
        listener = socket.create_server(("127.0.0.1", 0))
        try:
            host, port = listener.getsockname()
            with pytest.raises(TransportError):
                RemoteServerClient(host, port, timeout=0.3)
        finally:
            listener.close()


class _FlakyStore(MemoryStore):
    """A node store that fails batch ops until ``heal`` is called."""

    def __init__(self, name: str) -> None:
        super().__init__()
        self.name = name
        self.failing = False

    def multi_put(self, items):
        if self.failing:
            raise StorageError(f"multi_put boom on {self.name}")
        return super().multi_put(items)

    def multi_get(self, keys):
        if self.failing:
            raise StorageError(f"multi_get boom on {self.name}")
        return super().multi_get(keys)

    def multi_delete(self, keys):
        if self.failing:
            raise StorageError(f"multi_delete boom on {self.name}")
        return super().multi_delete(keys)


class TestClusterThreadPoolFanOut:
    def _cluster(self, num_nodes=3, replication_factor=2) -> StorageCluster:
        return StorageCluster(
            num_nodes=num_nodes,
            replication_factor=replication_factor,
            store_factory=_FlakyStore,
        )

    def test_multi_put_marks_down_and_reroutes_under_pool(self):
        cluster = self._cluster()
        items = [(f"key-{index:04d}".encode(), b"v" * 32) for index in range(200)]
        cluster.node_store("node-1").failing = True
        cluster.multi_put(items)
        assert "node-1" in cluster._down
        # Every key must be readable despite the mid-batch node failure.
        found = cluster.multi_get([key for key, _value in items])
        assert all(found[key] == b"v" * 32 for key, _value in items)
        cluster.close()

    def test_multi_get_reroutes_to_replica_when_node_fails(self):
        cluster = self._cluster()
        items = [(f"get-{index:04d}".encode(), bytes([index % 251])) for index in range(150)]
        cluster.multi_put(items)
        cluster.node_store("node-0").failing = True
        found = cluster.multi_get([key for key, _value in items])
        assert all(found[key] == value for key, value in items)
        assert "node-0" in cluster._down
        cluster.close()

    def test_multi_delete_propagates_lowest_named_node_error(self):
        cluster = self._cluster()
        items = [(f"del-{index:04d}".encode(), b"x") for index in range(120)]
        cluster.multi_put(items)
        cluster.node_store("node-2").failing = True
        cluster.node_store("node-1").failing = True
        with pytest.raises(StorageError) as excinfo:
            cluster.multi_delete([key for key, _value in items])
        # Deterministic propagation: the lowest-named failing node wins,
        # regardless of worker-thread timing.
        assert "node-1" in str(excinfo.value)
        cluster.close()

    def test_partition_error_when_all_replicas_down(self):
        cluster = self._cluster(num_nodes=2, replication_factor=2)
        cluster.mark_down("node-0")
        cluster.mark_down("node-1")
        with pytest.raises(PartitionError):
            cluster.multi_put([(b"k", b"v")])
        cluster.close()

    def test_concurrent_batches_keep_data_intact(self):
        cluster = self._cluster(num_nodes=4, replication_factor=2)
        errors = []

        def writer(thread_index: int) -> None:
            try:
                for round_index in range(10):
                    items = [
                        (f"t{thread_index}-r{round_index}-{k}".encode(), b"payload")
                        for k in range(25)
                    ]
                    cluster.multi_put(items)
                    found = cluster.multi_get([key for key, _value in items])
                    assert all(value == b"payload" for value in found.values())
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(index,)) for index in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        assert cluster.count_prefix(b"t") == 6 * 10 * 25
        cluster.close()


class TestTokenStoreBatching:
    def test_put_grants_matches_scalar_ids_and_order(self):
        scalar = TokenStore()
        batch = TokenStore(MemoryStore())
        grants = [
            ("stream-a", "alice", b"token-a0"),
            ("stream-a", "bob", b"token-b0"),
            ("stream-a", "alice", b"token-a1"),
            ("stream-b", "alice", b"token-ba"),
        ]
        scalar_ids = [scalar.put_grant(*grant) for grant in grants]
        batch_ids = batch.put_grants(grants)
        assert batch_ids == scalar_ids == [0, 0, 1, 0]
        for stream, principal in {(g[0], g[1]) for g in grants}:
            assert scalar.grants_for(stream, principal) == batch.grants_for(stream, principal)

    def test_put_grants_is_one_write_round_trip(self):
        backing = MemoryStore()
        store = TokenStore(backing)
        store.put_grants([("s", f"principal-{index}", b"tok") for index in range(32)])
        assert backing.stats.multi_puts == 1
        assert backing.stats.puts == 0
        assert backing.stats.multi_put_keys == 32

    def test_put_grants_handles_slash_in_principal_id(self):
        """'/'-containing principal ids get the exact scalar-path numbering."""
        scalar = TokenStore()
        batch = TokenStore()
        grants = [
            ("s", "org/alice", b"a0"),
            ("s", "org/bob", b"b0"),
            ("s", "org/alice", b"a1"),
            # Scalar counting is prefix-based, so "org" sees the three
            # "org/..." keys above; the batch must reproduce that exactly.
            ("s", "org", b"plain"),
        ]
        scalar_ids = [scalar.put_grant(*grant) for grant in grants]
        batch_ids = batch.put_grants(grants)
        assert batch_ids == scalar_ids == [0, 0, 1, 3]
        assert batch.grants_for("s", "org/alice") == [b"a0", b"a1"]
        assert batch.grants_for("s", "org/bob") == [b"b0"]
        # A second burst keeps counting correctly on top of the first.
        assert batch.put_grants([("s", "org/alice", b"a2")]) == [2]

    def test_put_grants_appends_after_existing(self):
        store = TokenStore()
        store.put_grant("s", "alice", b"first")
        ids = store.put_grants([("s", "alice", b"second"), ("s", "alice", b"third")])
        assert ids == [1, 2]
        assert store.grants_for("s", "alice") == [b"first", b"second", b"third"]

    def test_put_envelopes_is_one_write_round_trip(self):
        backing = MemoryStore()
        store = TokenStore(backing)
        store.put_envelopes("s", 4, {window: b"env" for window in range(0, 64, 4)})
        assert backing.stats.multi_puts == 1
        assert backing.stats.puts == 0
        assert store.envelopes_for_range("s", 4, 0, 63) == {
            window: b"env" for window in range(0, 64, 4)
        }

    def test_delete_grants_uses_multi_delete(self):
        backing = MemoryStore()
        store = TokenStore(backing)
        store.put_grants([("s", f"p{index}", b"tok") for index in range(10)])
        assert store.delete_grants("s") == 10
        assert backing.stats.multi_deletes == 1
        assert backing.stats.deletes == 0
        assert store.principals_with_grants("s") == []

    def test_empty_burst_is_free(self):
        backing = MemoryStore()
        store = TokenStore(backing)
        assert store.put_grants([]) == []
        store.put_envelopes("s", 2, {})
        assert backing.stats.round_trips == 0


class TestGrantBurst:
    def test_grant_access_many_end_to_end(self, small_config):
        """A cohort burst issues decryptable grants (full and restricted)."""
        server = ServerEngine()
        owner = TimeCrypt(server=server, owner_id="alice")
        uuid = owner.create_stream(metric="hr", config=small_config)
        records = [(t, float(50 + t % 10)) for t in range(0, 20_000, 100)]
        owner.insert_records(uuid, records)
        owner.flush(uuid)
        cohort = [Principal.create(f"worker-{index}") for index in range(4)]
        for principal in cohort:
            owner.register_principal(principal)
        policies = owner.grant_access_many(
            uuid,
            [
                ("worker-0", 0, 10_000, None),
                ("worker-1", 0, 20_000, None),
                ("worker-2", 0, 20_000, 4_000),
                ("worker-3", 0, 10_000, None),
            ],
        )
        assert len(policies) == 4
        full_consumer = TimeCryptConsumer(server=server, principal=cohort[1])
        full_consumer.fetch_access(uuid, small_config)
        stats = full_consumer.get_stat_range(uuid, 0, 20_000, operators=("count",))
        assert stats["count"] == len(records)
        restricted = TimeCryptConsumer(server=server, principal=cohort[2])
        restricted.fetch_access(uuid, small_config)
        coarse = restricted.get_stat_range(uuid, 0, 20_000, operators=("count",))
        assert coarse["count"] == len(records)

    def test_grant_burst_over_wire_is_bounded_round_trips(self, small_config):
        """Acceptance: a cohort grant burst costs O(1) wire round trips."""
        engine = ServerEngine()
        with TimeCryptTCPServer(engine) as server:
            host, port = server.address
            with RemoteServerClient(host, port) as remote:
                owner = TimeCrypt(server=remote, owner_id="alice")
                uuid = owner.create_stream(metric="hr", config=small_config)
                owner.insert_records(uuid, [(t, 1.0) for t in range(0, 10_000, 100)])
                owner.flush(uuid)
                cohort = [Principal.create(f"member-{index}") for index in range(16)]
                for principal in cohort:
                    owner.register_principal(principal)
                remote.wire_stats.reset()
                owner.grant_access_many(
                    uuid,
                    [(p.principal_id, 0, 10_000, None) for p in cohort],
                )
                assert remote.wire_stats.round_trips <= 2
                # Every member can still pick up and use their grant.
                consumer = TimeCryptConsumer(server=remote, principal=cohort[7])
                consumer.fetch_access(uuid, small_config)
                stats = consumer.get_stat_range(uuid, 0, 10_000, operators=("count",))
                assert stats["count"] == 100

    def test_grant_pickup_burst_via_pipeline(self, small_config):
        """Consumers batched through pipeline(): K pickups, one round trip."""
        engine = ServerEngine()
        with TimeCryptTCPServer(engine) as server:
            host, port = server.address
            with RemoteServerClient(host, port) as remote:
                owner = TimeCrypt(server=remote, owner_id="alice")
                uuid = owner.create_stream(metric="hr", config=small_config)
                owner.insert_records(uuid, [(t, 1.0) for t in range(0, 2_000, 100)])
                owner.flush(uuid)
                cohort = [Principal.create(f"batch-{index}") for index in range(5)]
                for principal in cohort:
                    owner.register_principal(principal)
                owner.grant_access_many(
                    uuid, [(p.principal_id, 0, 2_000, None) for p in cohort]
                )
                remote.wire_stats.reset()
                with remote.pipeline() as batch:
                    handles = [
                        batch.fetch_grants(uuid, principal.principal_id)
                        for principal in cohort
                    ]
                sealed_lists = [handle.result() for handle in handles]
                assert all(len(sealed) == 1 for sealed in sealed_lists)
                assert remote.wire_stats.round_trips == 1


class TestOuterPadsBatch:
    def test_outer_pads_match_scalar(self, key_tree: KeyDerivationTree):
        cipher = HEACCipher(key_tree)
        for window_start, window_end in ((0, 1), (3, 17), (5, 6), (100, 4096)):
            batch = cipher.outer_pads(window_start, window_end, 6)
            scalar = [
                cipher.outer_pad(window_start, window_end, component)
                for component in range(6)
            ]
            assert batch == scalar

    def test_multi_stream_decrypt_unchanged(self, small_config):
        """End to end: inter-stream aggregates decrypt to the true totals."""
        server = ServerEngine()
        owner = TimeCrypt(server=server, owner_id="alice")
        uuids = []
        for index in range(3):
            uuid = owner.create_stream(metric=f"m{index}", config=small_config)
            owner.insert_records(uuid, [(t, float(index + 1)) for t in range(0, 5_000, 100)])
            owner.flush(uuid)
            uuids.append(uuid)
        stats = owner.get_stat_range(uuids, 0, 5_000, operators=("sum", "count"))
        assert stats["count"] == 3 * 50
        assert stats["sum"] == pytest.approx(50 * (1 + 2 + 3))
