"""The observability plane: metrics registry, tracing, scrape ops, logging.

Covers the unified plane added in :mod:`repro.obs`:

- the process-wide :class:`MetricsRegistry` (weakly-held sources, collision
  suffixing, the deterministic-counter subset the CI gate reads),
- :class:`Counter` / :class:`Gauge` / :class:`Histogram` primitives,
- the bounded :class:`SpanCollector` ring buffer and its slow-request log,
- the ``stats`` / ``trace_dump`` wire scrape ops on every tier,
- trace-context propagation: the ``trace`` header key, the per-connection
  negotiation, thread-local parenting through server handlers, and the
  connected span tree across client → router → engine shard → storage node,
- edge cases: v1 lockstep fallback, compressed frames, ``overloaded`` sheds
  retried under the same trace id, and zero span recording with tracing off,
- the adaptive ``retry_after_ms`` hint derived from the bulk drain rate,
- library-style logging (NullHandler on the ``repro`` root logger; cluster
  lifecycle events emitted at INFO/WARNING).
"""

from __future__ import annotations

import logging
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import ServerEngine, StreamConfig, TimeCrypt
from repro.exceptions import OverloadedError, StreamNotFoundError
from repro.net.client import RemoteServerClient, ShardedServerClient
from repro.net.messages import Request, Response
from repro.net.server import (
    DEFAULT_RETRY_AFTER_MS,
    MAX_RETRY_AFTER_MS,
    MIN_RETRY_AFTER_MS,
    RequestDispatcher,
    TimeCryptTCPServer,
    WireDispatcher,
    _FrameScheduler,
)
from repro.obs import SPANS
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracing import SpanCollector, current_context, set_context
from repro.server.router import deploy_sharded_engines
from repro.storage.cluster import StorageCluster
from repro.storage.memory import MemoryStore
from repro.storage.node import StorageNodeServer
from repro.storage.remote import RemoteKeyValueStore
from repro.util.timeutil import TimeRange

CHUNK_INTERVAL = 1_000


@pytest.fixture(autouse=True)
def _clean_spans():
    """Each test starts and ends with an empty process-global span buffer."""
    SPANS.clear()
    yield
    SPANS.clear()


# ---------------------------------------------------------------------------
# Metrics registry


class _Stats:
    def __init__(self) -> None:
        self.calls = 0

    def snapshot(self):
        return {"calls": self.calls}


def test_registry_register_snapshot_unregister():
    registry = MetricsRegistry()
    source = _Stats()
    source.calls = 3
    key = registry.register("test.stats", source)
    assert registry.snapshot()[key] == {"calls": 3}
    registry.unregister(key)
    assert key not in registry.snapshot()


def test_registry_suffixes_colliding_names():
    registry = MetricsRegistry()
    first, second = _Stats(), _Stats()
    key_a = registry.register("dup", first)
    key_b = registry.register("dup", second)
    assert key_a == "dup"
    assert key_b != "dup" and key_b.startswith("dup#")
    assert set(registry.snapshot()) == {key_a, key_b}


def test_registry_prunes_dead_sources():
    registry = MetricsRegistry()
    source = _Stats()
    key = registry.register("ephemeral", source)
    assert key in registry.snapshot()
    del source
    assert key not in registry.snapshot()


def test_registry_deterministic_subset():
    registry = MetricsRegistry()
    source = _Stats()

    def snapshot(stats):
        return {"calls": stats.calls, "wall_ms": 12.7}

    key = registry.register("mixed", source, snapshot=snapshot, deterministic=("calls",))
    deterministic = registry.deterministic_snapshot()
    # Only the declared counters survive; the timing field is filtered out.
    assert deterministic == {key: {"calls": 0}}


def test_registry_default_snapshot_uses_dataclass_fields():
    from repro.storage.memory import StoreStats

    registry = MetricsRegistry()
    stats = StoreStats()
    stats.gets = 5
    key = registry.register("ds", stats)
    assert registry.snapshot()[key]["gets"] == 5


def test_counter_gauge_histogram():
    counter = Counter()
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    assert counter.snapshot() == {"count": 5}

    gauge = Gauge()
    gauge.set(17)
    assert gauge.value == 17
    assert gauge.snapshot() == {"value": 17}

    histogram = Histogram(boundaries=(10, 100))
    for value in (1, 10, 11, 1000):
        histogram.observe(value)
    snap = histogram.snapshot()
    assert snap["counts"] == [2, 1, 1]  # <=10, <=100, overflow
    assert snap["count"] == 4
    assert snap["sum"] == 1022


# ---------------------------------------------------------------------------
# Span collector


def test_span_collector_bounds_and_filters():
    collector = SpanCollector(capacity=4)
    for index in range(10):
        collector.record({"trace_id": f"t{index % 2}", "span_id": str(index)})
    assert collector.recorded == 10
    spans = collector.spans()
    assert len(spans) == 4  # oldest six dropped
    assert [span["span_id"] for span in spans] == ["6", "7", "8", "9"]
    assert all(span["trace_id"] == "t1" for span in collector.spans(trace_id="t1"))
    assert len(collector.spans(limit=2)) == 2
    assert collector.snapshot() == {"recorded": 10, "buffered": 4}


def test_span_collector_slow_request_log(caplog):
    collector = SpanCollector(capacity=8, slow_ms=50.0)
    with caplog.at_level(logging.WARNING, logger="repro.obs.tracing"):
        collector.record({"trace_id": "t", "span_id": "a", "op": "fast", "total_ms": 1.0})
        collector.record({"trace_id": "t", "span_id": "b", "op": "slow", "total_ms": 80.0})
    messages = [record.getMessage() for record in caplog.records]
    assert any("slow request" in message and "op=slow" in message for message in messages)
    assert not any("op=fast" in message for message in messages)


def test_thread_local_context_is_per_thread():
    assert current_context() is None
    previous = set_context(("trace", "span"))
    try:
        assert previous is None
        assert current_context() == ("trace", "span")
        with ThreadPoolExecutor(max_workers=1) as pool:
            assert pool.submit(current_context).result() is None
    finally:
        set_context(previous)
    assert current_context() is None


# ---------------------------------------------------------------------------
# Scrape ops over the wire


def test_stats_scrape_over_socket():
    engine = ServerEngine()
    with TimeCryptTCPServer(engine, node_name="engine-main") as server:
        host, port = server.address
        with RemoteServerClient(host, port) as remote:
            assert remote.supports_operation("stats")
            response = remote.call_many([Request("stats")])[0]
    assert response.ok
    assert response.result["node"] == "engine-main"
    metrics = response.result["metrics"]
    # One snapshot covers the whole process: the engine's query stats, the
    # index cache, the store, the scheduler, and the wire-memory counters.
    assert any(key.startswith("engine.query_stats") for key in metrics)
    assert any(key.startswith("engine.index_cache") for key in metrics)
    assert any(key.startswith("store.memory") for key in metrics)
    assert any(key.startswith("server.scheduler") for key in metrics)
    assert "wire.memory" in metrics
    assert "tracing.spans" in metrics


def test_trace_dump_scrape_over_socket():
    engine = ServerEngine()
    with TimeCryptTCPServer(engine, node_name="engine-main") as server:
        host, port = server.address
        with RemoteServerClient(host, port, tracing=True) as remote:
            remote.ping()
            response = remote.call_many([Request("trace_dump")])[0]
    assert response.ok
    spans = response.result["spans"]
    server_spans = [span for span in spans if span["kind"] == "server"]
    assert server_spans, "the traced ping must have produced a server span"
    ping = next(span for span in server_spans if span["op"] == "ping")
    assert ping["node"] == "engine-main"
    assert ping["status"] == "ok"
    for field in ("queue_ms", "handler_ms", "write_ms", "total_ms", "request_bytes"):
        assert field in ping


def test_trace_dump_filters_by_trace_id():
    SPANS.record({"trace_id": "aaaa", "span_id": "1", "kind": "client"})
    SPANS.record({"trace_id": "bbbb", "span_id": "2", "kind": "client"})
    engine = ServerEngine()
    with TimeCryptTCPServer(engine) as server:
        host, port = server.address
        with RemoteServerClient(host, port) as remote:
            response = remote.call_many([Request("trace_dump", {"trace_id": "aaaa"})])[0]
    assert [span["span_id"] for span in response.result["spans"]] == ["1"]


def test_scrape_ops_are_interactive_and_lock_free():
    from repro.net.messages import BULK_OPERATIONS, classify_operation

    for operation in ("stats", "trace_dump"):
        assert operation not in BULK_OPERATIONS
        assert classify_operation(operation) == "interactive"
        assert operation in RequestDispatcher._LOCK_FREE_OPS


# ---------------------------------------------------------------------------
# Trace negotiation and propagation


def test_tracing_negotiated_in_hello():
    engine = ServerEngine()
    with TimeCryptTCPServer(engine, tracing=True) as server:
        host, port = server.address
        with RemoteServerClient(host, port, tracing=True) as remote:
            assert remote.hello_info.get("tracing") is True


def test_server_records_no_spans_for_non_tracing_client():
    engine = ServerEngine()
    with TimeCryptTCPServer(engine) as server:
        host, port = server.address
        with RemoteServerClient(host, port) as remote:  # tracing off (default)
            remote.ping()
    assert SPANS.spans() == []


def test_tracing_disabled_server_ignores_trace_context():
    engine = ServerEngine()
    with TimeCryptTCPServer(engine, tracing=False) as server:
        host, port = server.address
        with RemoteServerClient(host, port, tracing=True) as remote:
            assert remote.hello_info.get("tracing") is None
            assert remote.ping()
    # The client still opened its own span; the server recorded none.
    kinds = {span["kind"] for span in SPANS.spans()}
    assert kinds == {"client"}


def test_client_and_server_spans_share_a_trace():
    engine = ServerEngine()
    with TimeCryptTCPServer(engine, node_name="engine-main") as server:
        host, port = server.address
        with RemoteServerClient(host, port, tracing=True) as remote:
            remote.ping()
    spans = SPANS.spans()
    client = next(span for span in spans if span["kind"] == "client" and span["op"] == "ping")
    srv = next(span for span in spans if span["kind"] == "server" and span["op"] == "ping")
    assert client["trace_id"] == srv["trace_id"]
    assert srv["parent_id"] == client["span_id"]
    assert client["parent_id"] is None
    assert client["status"] == "ok"


def test_error_spans_record_the_error_type():
    engine = ServerEngine()
    with TimeCryptTCPServer(engine) as server:
        host, port = server.address
        with RemoteServerClient(host, port, tracing=True) as remote:
            with pytest.raises(StreamNotFoundError):
                remote.stream_head("no-such-stream")
    statuses = {span["kind"]: span["status"] for span in SPANS.spans() if span["op"] == "stream_head"}
    assert statuses["server"] == "StreamNotFoundError"
    assert statuses["client"] == "StreamNotFoundError"


def test_v1_lockstep_client_with_tracing_is_harmless():
    """A forced-v1 client attaches the trace key; the server drops it cleanly."""
    engine = ServerEngine()
    with TimeCryptTCPServer(engine) as server:
        host, port = server.address
        with RemoteServerClient(host, port, protocol_version=1, tracing=True) as remote:
            assert remote.protocol_version == 1
            assert remote.ping()
            # No protocol error, correct results, and the un-negotiated
            # connection produced no server spans.
    spans = SPANS.spans()
    assert all(span["kind"] == "client" for span in spans)


def test_tracing_rides_compressed_frames():
    engine = ServerEngine()
    with TimeCryptTCPServer(engine, wire_compression=True, node_name="zip") as server:
        host, port = server.address
        with RemoteServerClient(host, port, compression=True, tracing=True) as remote:
            assert "zlib" in remote.hello_info.get("compression", [])
            # Big compressible args force the compressed-frame path.
            response = remote.call_many(
                [Request("ping", {"pad": "x" * 65536}) for _ in range(3)]
            )
            assert all(r.ok for r in response)
            sent = remote.wire_stats.frames_compressed
    assert sent > 0, "the padded requests must have travelled compressed"
    server_spans = [span for span in SPANS.spans() if span["kind"] == "server"]
    assert len([span for span in server_spans if span["op"] == "ping"]) == 3


def test_shed_retry_keeps_the_trace_id():
    """A request re-sent after an ``overloaded`` shed is the same span."""

    class _Shedder(WireDispatcher):
        def __init__(self) -> None:
            self.attempts = 0

        def _op_stream_head(self, _request: Request) -> Response:
            self.attempts += 1
            if self.attempts <= 2:
                response = Response.failure(OverloadedError("busy", retry_after_ms=5))
                response.result = {"retry_after_ms": 5, "queue": "interactive"}
                return response
            return Response.success({"head": 7})

    dispatcher = _Shedder()
    with TimeCryptTCPServer(dispatcher=dispatcher, node_name="shedder") as server:
        host, port = server.address
        with RemoteServerClient(host, port, overload_retries=4, tracing=True) as remote:
            assert remote.stream_head("s") == 7
            assert remote.wire_stats.overload_retries == 2
    spans = [span for span in SPANS.spans() if span["op"] == "stream_head"]
    client_spans = [span for span in spans if span["kind"] == "client"]
    server_spans = [span for span in spans if span["kind"] == "server"]
    # One client span for the whole retried call; one server span per
    # attempt (two sheds, one success), all under the same trace id.
    assert len(client_spans) == 1
    assert len(server_spans) == 3
    trace_ids = {span["trace_id"] for span in spans}
    assert trace_ids == {client_spans[0]["trace_id"]}
    assert all(span["parent_id"] == client_spans[0]["span_id"] for span in server_spans)
    statuses = sorted(span["status"] for span in server_spans)
    assert statuses == ["OverloadedError", "OverloadedError", "ok"]


# ---------------------------------------------------------------------------
# The connected span tree across tiers


def _assert_connected_tree(spans, trace_id):
    tree = [span for span in spans if span["trace_id"] == trace_id]
    by_id = {span["span_id"]: span for span in tree}
    roots = [span for span in tree if span["parent_id"] is None]
    assert len(roots) == 1, f"expected one root, got {roots}"
    for span in tree:
        if span["parent_id"] is not None:
            assert span["parent_id"] in by_id, f"orphan span {span}"
    return tree, roots[0]


def _one_encrypted_stream(num_chunks: int = 8):
    scratch = ServerEngine()
    owner = TimeCrypt(server=scratch, owner_id="tester")
    config = StreamConfig(chunk_interval=CHUNK_INTERVAL, index_fanout=4)
    uuid = owner.create_stream(metric="obs", config=config)
    owner.insert_records(
        uuid, [(t, float(t % 97)) for t in range(0, num_chunks * CHUNK_INTERVAL, 100)]
    )
    owner.flush(uuid)
    chunks = [scratch.get_chunk(uuid, position) for position in range(num_chunks)]
    return scratch.stream_metadata(uuid), chunks


def test_sharded_stat_range_yields_connected_tree_to_storage():
    """The acceptance path: client → engine shard → storage node, one tree."""
    backing = MemoryStore()
    with StorageNodeServer(backing, node_name="storage-0") as node:
        host, port = node.address
        from repro.access.keystore import TokenStore

        engines = {}
        for index in range(2):
            store = RemoteKeyValueStore(host, port, timeout=10.0, tracing=True)
            engines[f"engine-{index}"] = ServerEngine(
                store=store, token_store=TokenStore(store=store)
            )
        router, shards = deploy_sharded_engines(engines)
        try:
            metadata, chunks = _one_encrypted_stream()
            with ShardedServerClient(*router.address, timeout=10.0, tracing=True) as client:
                client.create_stream(metadata)
                client.insert_chunks(chunks)
                # Drop cached index state so the query must read storage.
                for shard in shards.values():
                    shard.engine.reset_stream_cache()
                SPANS.clear()
                result = client.stat_range(metadata.uuid, TimeRange(0, 8 * CHUNK_INTERVAL))
                assert result.cells
        finally:
            router.stop()
            for shard in shards.values():
                shard.stop()

        spans = SPANS.spans()
        root = next(
            span
            for span in spans
            if span["kind"] == "client" and span["op"] == "stat_range" and span["parent_id"] is None
        )
        tree, _ = _assert_connected_tree(spans, root["trace_id"])
        engine_spans = [
            span for span in tree if span["kind"] == "server" and span["op"] == "stat_range"
        ]
        assert len(engine_spans) == 1
        assert engine_spans[0]["node"].startswith("engine:engine-")
        assert engine_spans[0]["parent_id"] == root["span_id"]
        # The engine's storage reads hang off its server span...
        kv_clients = [
            span for span in tree if span["kind"] == "client" and span["op"].startswith("kv_")
        ]
        assert kv_clients
        assert all(span["parent_id"] == engine_spans[0]["span_id"] for span in kv_clients)
        # ...and the storage node's server spans hang off those.
        kv_servers = [
            span for span in tree if span["kind"] == "server" and span["op"].startswith("kv_")
        ]
        assert kv_servers
        assert kv_servers[0]["node"] == "storage-0"
        kv_client_ids = {span["span_id"] for span in kv_clients}
        assert all(span["parent_id"] in kv_client_ids for span in kv_servers)


def test_router_proxied_request_yields_four_tier_tree():
    """A plain client through the router: client → router → engine → storage."""
    backing = MemoryStore()
    with StorageNodeServer(backing, node_name="storage-0") as node:
        host, port = node.address
        from repro.access.keystore import TokenStore

        store = RemoteKeyValueStore(host, port, timeout=10.0, tracing=True)
        engines = {"engine-0": ServerEngine(store=store, token_store=TokenStore(store=store))}
        router, shards = deploy_sharded_engines(engines)
        try:
            metadata, chunks = _one_encrypted_stream()
            with RemoteServerClient(*router.address, tracing=True) as remote:
                remote.create_stream(metadata)
                remote.insert_chunks(chunks)
                shards["engine-0"].engine.reset_stream_cache()
                SPANS.clear()
                remote.stat_range(metadata.uuid, TimeRange(0, 8 * CHUNK_INTERVAL))
        finally:
            router.stop()
            for shard in shards.values():
                shard.stop()

        spans = SPANS.spans()
        root = next(
            span
            for span in spans
            if span["kind"] == "client" and span["op"] == "stat_range" and span["parent_id"] is None
        )
        tree, _ = _assert_connected_tree(spans, root["trace_id"])
        nodes_by_kind = {(span["kind"], span["node"]) for span in tree}
        assert ("server", "router") in nodes_by_kind
        assert ("server", "engine:engine-0") in nodes_by_kind
        assert ("server", "storage-0") in nodes_by_kind
        # Four tiers deep: root client → router server → (forwarded request
        # keeps the root's trace context) engine server → kv client → storage.
        depths = {}

        def depth(span_id, by_id):
            span = by_id[span_id]
            if span["parent_id"] is None:
                return 0
            return 1 + depth(span["parent_id"], by_id)

        by_id = {span["span_id"]: span for span in tree}
        for span in tree:
            depths[span["span_id"]] = depth(span["span_id"], by_id)
        assert max(depths.values()) >= 3


def test_scrape_each_tier_in_one_round_trip():
    """stats / trace_dump pull from router, engine shard, and storage node."""
    backing = MemoryStore()
    with StorageNodeServer(backing, node_name="storage-0") as node:
        engines = {"engine-0": ServerEngine()}
        router, shards = deploy_sharded_engines(engines)
        try:
            targets = [router.address, shards["engine-0"].address, node.address]
            for address in targets:
                with RemoteServerClient(*address, timeout=10.0) as remote:
                    before = remote.wire_stats.round_trips
                    stats = remote.call_many([Request("stats")])[0]
                    dump = remote.call_many([Request("trace_dump")])[0]
                    assert stats.ok and dump.ok
                    assert "metrics" in stats.result and "spans" in dump.result
                    assert remote.wire_stats.round_trips == before + 2
        finally:
            router.stop()
            for shard in shards.values():
                shard.stop()


# ---------------------------------------------------------------------------
# Adaptive overload hints


def _make_scheduler(bulk_limit: int = 8) -> _FrameScheduler:
    pool = ThreadPoolExecutor(max_workers=1)
    scheduler = _FrameScheduler(
        pool=pool,
        handler=lambda *args: None,
        max_workers=1,
        interactive_limit=8,
        bulk_limit=bulk_limit,
        interactive_weight=4,
    )
    return scheduler


def test_retry_hint_falls_back_before_measurements():
    scheduler = _make_scheduler()
    assert scheduler.retry_hint_ms("bulk", default=25) == 25
    assert scheduler.retry_hint_ms("interactive", default=25) == 25


def test_retry_hint_scales_with_depth_and_drain_rate():
    scheduler = _make_scheduler()
    scheduler._bulk_interval_ewma_ns = 4e6  # 4 ms per bulk dispatch
    scheduler._queues["bulk"].extend((None, None, 0) for _ in range(5))
    hint = scheduler.retry_hint_ms("bulk", default=25)
    assert hint == 20  # 5 deep × 4 ms
    # Clamped at both ends.
    scheduler._bulk_interval_ewma_ns = 1e3
    assert scheduler.retry_hint_ms("bulk", default=25) == MIN_RETRY_AFTER_MS
    scheduler._bulk_interval_ewma_ns = 1e12
    assert scheduler.retry_hint_ms("bulk", default=25) == MAX_RETRY_AFTER_MS
    # Interactive sheds never use the bulk drain estimate.
    assert scheduler.retry_hint_ms("interactive", default=25) == 25


def test_shed_carries_adaptive_hint_after_bulk_traffic():
    """Once bulk frames have drained, sheds hint the measured rate, not 25."""
    import threading

    class _Gated(WireDispatcher):
        def __init__(self) -> None:
            self.release = threading.Event()

        def _op_insert_chunks(self, request: Request) -> Response:
            self.release.wait(10)
            return Response.success({"window_index": 0, "num_chunks": len(request.attachments)})

    dispatcher = _Gated()
    with TimeCryptTCPServer(
        dispatcher=dispatcher, max_workers=1, bulk_queue_limit=2, retry_after_ms=40
    ) as server:
        host, port = server.address
        with RemoteServerClient(host, port, flow_control=False, overload_retries=0) as remote:
            requests = [Request("insert_chunks", {}, [b"\x00"]) for _ in range(12)]
            futures = remote._send_requests(requests)
            deadline = time.monotonic() + 5
            while sum(f.done() for f in futures) < 8 and time.monotonic() < deadline:
                time.sleep(0.005)
            dispatcher.release.set()
            responses = [future.result(timeout=10) for future in futures]
    shed = [r for r in responses if not r.ok]
    assert shed and all(r.error_type == "OverloadedError" for r in shed)
    hints = {r.result["retry_after_ms"] for r in shed}
    # Before two bulk dispatches the configured default applies; once the
    # drain rate is measured the hint is clamped into the adaptive band.
    assert all(
        hint == 40 or MIN_RETRY_AFTER_MS <= hint <= MAX_RETRY_AFTER_MS for hint in hints
    )
    assert DEFAULT_RETRY_AFTER_MS == 25  # the constant remains the fallback


# ---------------------------------------------------------------------------
# Logging


def test_repro_root_logger_has_null_handler():
    import repro.obs  # noqa: F401 — importing installs the handler

    handlers = logging.getLogger("repro").handlers
    assert any(isinstance(handler, logging.NullHandler) for handler in handlers)


def test_cluster_lifecycle_events_logged(caplog):
    cluster = StorageCluster(num_nodes=3, replication_factor=2)
    cluster.put(b"chunk/x", b"payload")
    name = cluster.node_names[0]
    with caplog.at_level(logging.INFO, logger="repro.storage.cluster"):
        cluster.mark_down(name)
        cluster.put(b"chunk/x", b"payload-2")  # parks a hint for the downed node
        cluster.mark_up(name)
    messages = [record.getMessage() for record in caplog.records]
    assert any("marked down" in message for message in messages)
    assert any("marked up" in message for message in messages)


def test_tracing_off_is_allocation_free_on_the_scheduler_path():
    """With tracing off, enqueue timestamps stay zero (no per-frame clock reads)."""
    engine = ServerEngine()
    with TimeCryptTCPServer(engine, tracing=False) as server:
        host, port = server.address
        with RemoteServerClient(host, port) as remote:
            for _ in range(4):
                remote.ping()
    assert SPANS.spans() == []
