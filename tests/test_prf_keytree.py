"""Tests for the PRG constructions and the GGM key-derivation tree."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.keytree import DerivedKeystream, KeyDerivationTree, merge_token_sets
from repro.crypto.prf import available_prgs, get_prg, kdf, prf, prf_int
from repro.exceptions import ConfigurationError, KeyDerivationError

SEED = bytes(range(16))


class TestPRGs:
    @pytest.mark.parametrize("name", available_prgs())
    def test_expand_is_deterministic_and_splits(self, name):
        prg = get_prg(name)
        left1, right1 = prg.expand(SEED)
        left2, right2 = prg.expand(SEED)
        assert (left1, right1) == (left2, right2)
        assert left1 != right1
        assert len(left1) == len(right1) == 16

    @pytest.mark.parametrize("name", available_prgs())
    def test_children_match_expand(self, name):
        prg = get_prg(name)
        assert prg.left(SEED) == prg.expand(SEED)[0]
        assert prg.right(SEED) == prg.expand(SEED)[1]
        assert prg.child(SEED, 0) == prg.left(SEED)
        assert prg.child(SEED, 1) == prg.right(SEED)

    def test_invalid_child_bit(self):
        with pytest.raises(ValueError):
            get_prg("blake2").child(SEED, 2)

    def test_invalid_seed_length(self):
        with pytest.raises(ValueError):
            get_prg("blake2").expand(b"short")

    def test_unknown_prg_rejected(self):
        with pytest.raises(ConfigurationError):
            get_prg("md5")

    def test_different_constructions_disagree(self):
        """Distinct PRG constructions produce unrelated keystreams."""
        outputs = {name: get_prg(name).expand(SEED) for name in ("sha256", "blake2", "aes")}
        assert len(set(outputs.values())) == len(outputs)

    def test_aes_backends_agree(self):
        """The pure-Python AES PRG and the native-backend PRG are interchangeable."""
        if "aes-ni" not in available_prgs():
            pytest.skip("native AES backend not available")
        assert get_prg("aes").expand(SEED) == get_prg("aes-ni").expand(SEED)


class TestPRF:
    def test_prf_deterministic(self):
        assert prf(b"key", b"msg") == prf(b"key", b"msg")

    def test_prf_key_separation(self):
        assert prf(b"key1", b"msg") != prf(b"key2", b"msg")

    def test_prf_output_length(self):
        assert len(prf(b"key", b"msg", 5)) == 5
        assert len(prf(b"key", b"msg", 100)) == 100

    def test_prf_invalid_length(self):
        with pytest.raises(ValueError):
            prf(b"key", b"msg", 0)

    def test_prf_int_in_range(self):
        for modulus in (2, 10, 1 << 64):
            assert 0 <= prf_int(b"key", b"msg", modulus) < modulus

    def test_prf_int_invalid_modulus(self):
        with pytest.raises(ValueError):
            prf_int(b"key", b"msg", 0)

    def test_kdf_domain_separation(self):
        assert kdf(SEED, "label-a") != kdf(SEED, "label-b")


class TestKeyDerivationTree:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            KeyDerivationTree(seed=b"short", height=10)
        with pytest.raises(ValueError):
            KeyDerivationTree(seed=SEED, height=0)
        with pytest.raises(ValueError):
            KeyDerivationTree(seed=SEED, height=63)

    def test_leaf_determinism_and_distinctness(self):
        tree = KeyDerivationTree(seed=SEED, height=10, prg="blake2")
        leaves = [tree.leaf(i) for i in range(32)]
        assert leaves == [tree.leaf(i) for i in range(32)]
        assert len(set(leaves)) == 32

    def test_leaf_out_of_range(self):
        tree = KeyDerivationTree(seed=SEED, height=4, prg="blake2")
        with pytest.raises(KeyDerivationError):
            tree.leaf(16)
        with pytest.raises(KeyDerivationError):
            tree.leaf(-1)

    def test_cache_levels_do_not_change_results(self):
        uncached = KeyDerivationTree(seed=SEED, height=12, prg="blake2", cache_levels=0)
        cached = KeyDerivationTree(seed=SEED, height=12, prg="blake2", cache_levels=12)
        for i in (0, 1, 100, 4095):
            assert uncached.leaf(i) == cached.leaf(i)

    def test_prg_choice_changes_keystream(self):
        blake = KeyDerivationTree(seed=SEED, height=8, prg="blake2")
        sha = KeyDerivationTree(seed=SEED, height=8, prg="sha256")
        assert blake.leaf(0) != sha.leaf(0)

    def test_keys_iterator(self):
        tree = KeyDerivationTree(seed=SEED, height=8, prg="blake2")
        assert list(tree.keys(3, 7)) == [tree.leaf(i) for i in range(3, 7)]

    def test_root_token_covers_everything(self):
        tree = KeyDerivationTree(seed=SEED, height=6, prg="blake2")
        root = tree.root_token()
        assert root.leaf_span == (0, 63)
        derived = DerivedKeystream([root], prg="blake2")
        assert derived.leaf(0) == tree.leaf(0)
        assert derived.leaf(63) == tree.leaf(63)


class TestTokensForRange:
    @pytest.mark.parametrize("start,end", [(0, 8), (3, 11), (5, 6), (0, 1), (7, 16), (1, 15)])
    def test_cover_is_exact(self, start, end):
        tree = KeyDerivationTree(seed=SEED, height=4, prg="blake2")
        tokens = tree.tokens_for_range(start, end)
        covered = sorted(
            leaf for token in tokens for leaf in range(token.leaf_span[0], token.leaf_span[1] + 1)
        )
        assert covered == list(range(start, end))

    def test_cover_is_minimal_for_aligned_subtree(self):
        tree = KeyDerivationTree(seed=SEED, height=4, prg="blake2")
        assert len(tree.tokens_for_range(0, 16)) == 1
        assert len(tree.tokens_for_range(0, 8)) == 1
        assert len(tree.tokens_for_range(8, 16)) == 1

    def test_cover_size_bounded(self):
        tree = KeyDerivationTree(seed=SEED, height=10, prg="blake2")
        for start, end in [(1, 1023), (3, 700), (511, 513)]:
            assert len(tree.tokens_for_range(start, end)) <= 2 * tree.height

    def test_invalid_range(self):
        tree = KeyDerivationTree(seed=SEED, height=4, prg="blake2")
        with pytest.raises(KeyDerivationError):
            tree.tokens_for_range(0, 17)
        with pytest.raises(KeyDerivationError):
            tree.tokens_for_range(5, 3)

    @given(st.integers(0, 255), st.integers(0, 255))
    @settings(max_examples=40, deadline=None)
    def test_cover_property(self, a, b):
        start, end = min(a, b), max(a, b) + 1
        tree = KeyDerivationTree(seed=SEED, height=8, prg="blake2")
        tokens = tree.tokens_for_range(start, end)
        covered = set()
        for token in tokens:
            lo, hi = token.leaf_span
            covered.update(range(lo, hi + 1))
        assert covered == set(range(start, end))


class TestDerivedKeystream:
    def test_derives_exactly_granted_keys(self):
        tree = KeyDerivationTree(seed=SEED, height=8, prg="blake2")
        tokens = tree.tokens_for_range(10, 30)
        derived = DerivedKeystream(tokens, prg="blake2")
        for i in range(10, 30):
            assert derived.leaf(i) == tree.leaf(i)
        for i in (9, 30, 0, 255):
            with pytest.raises(KeyDerivationError):
                derived.leaf(i)

    def test_can_derive_checks(self):
        tree = KeyDerivationTree(seed=SEED, height=8, prg="blake2")
        derived = DerivedKeystream(tree.tokens_for_range(4, 12), prg="blake2")
        assert derived.can_derive(4) and derived.can_derive(11)
        assert not derived.can_derive(3) and not derived.can_derive(12)
        assert derived.can_derive_range(4, 12)
        assert not derived.can_derive_range(4, 13)
        assert derived.can_derive_range(5, 5)  # empty range is trivially satisfied

    def test_covered_ranges_merging(self):
        tree = KeyDerivationTree(seed=SEED, height=8, prg="blake2")
        tokens = merge_token_sets(tree.tokens_for_range(0, 4), tree.tokens_for_range(4, 8))
        derived = DerivedKeystream(tokens, prg="blake2")
        assert derived.covered_ranges == [(0, 7)]

    def test_requires_at_least_one_token(self):
        with pytest.raises(ValueError):
            DerivedKeystream([], prg="blake2")

    def test_rejects_mixed_tree_heights(self):
        tree_a = KeyDerivationTree(seed=SEED, height=8, prg="blake2")
        tree_b = KeyDerivationTree(seed=SEED, height=10, prg="blake2")
        with pytest.raises(ValueError):
            DerivedKeystream(
                tree_a.tokens_for_range(0, 2) + tree_b.tokens_for_range(0, 2), prg="blake2"
            )

    def test_merge_token_sets_deduplicates(self):
        tree = KeyDerivationTree(seed=SEED, height=8, prg="blake2")
        tokens = tree.tokens_for_range(0, 8)
        merged = merge_token_sets(tokens, tokens)
        assert len(merged) == len(tokens)
