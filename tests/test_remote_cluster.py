"""Tests for the remote storage node tier and the cluster that rides on it.

Covers the ``kv_*`` wire operations end to end (StorageNodeServer ↔
RemoteKeyValueStore over real TCP), frame-cap batch splitting in one round
trip, paged streaming scans, connect/reconnect and node-outage → StorageError
mapping, a StorageCluster replicating across sockets (byte-identity against
the in-process cluster on a mixed ingest/query/grant/delete workload, node
kill/restart + ``repair_node`` over sockets, concurrent fan-out, per-node
round-trip budgets), the streaming heap-merge scan/repair machinery, cluster
lifecycle edge cases, and the consumer cold-start warm-up pipeline.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Iterator, Tuple

import pytest

from repro import Principal, ServerEngine, StreamConfig, TimeCrypt, TimeCryptConsumer
from repro.access.keystore import TokenStore
from repro.exceptions import ProtocolError, StorageError
from repro.net.client import RemoteServerClient
from repro.net.messages import KV_OPERATIONS, Request
from repro.net.server import TimeCryptTCPServer
from repro.storage.cluster import StorageCluster
from repro.storage.memory import MemoryStore
from repro.storage.node import StorageNodeServer
from repro.storage.remote import RemoteKeyValueStore


@pytest.fixture()
def node():
    """One running storage node over a MemoryStore."""
    store = MemoryStore()
    with StorageNodeServer(store) as server:
        yield server


@pytest.fixture()
def remote(node):
    """A connected RemoteKeyValueStore client for the ``node`` fixture."""
    host, port = node.address
    store = RemoteKeyValueStore(host, port, timeout=5.0)
    yield store
    store.close()


class _ClusterHarness:
    """N storage-node servers plus a StorageCluster dialing them."""

    def __init__(self, num_nodes: int = 3, replication_factor: int = 2, **store_kwargs) -> None:
        self.backing: Dict[str, MemoryStore] = {}
        self.servers: Dict[str, StorageNodeServer] = {}
        self.addresses: Dict[str, Tuple[str, int]] = {}
        for index in range(num_nodes):
            name = f"node-{index}"
            self.backing[name] = MemoryStore()
            server = StorageNodeServer(self.backing[name]).start()
            self.servers[name] = server
            self.addresses[name] = server.address
        self.cluster = StorageCluster(
            num_nodes=num_nodes,
            replication_factor=replication_factor,
            store_factory=lambda name: RemoteKeyValueStore(
                *self.addresses[name], timeout=5.0, **store_kwargs
            ),
        )

    def kill(self, name: str) -> None:
        self.servers[name].stop()

    def restart(self, name: str) -> None:
        self.servers[name] = StorageNodeServer(
            self.backing[name], port=self.addresses[name][1]
        ).start()

    def close(self) -> None:
        self.cluster.close()
        for server in self.servers.values():
            server.stop()


@pytest.fixture()
def harness():
    h = _ClusterHarness()
    yield h
    h.close()


# ---------------------------------------------------------------------------
# kv_* wire operations against one node
# ---------------------------------------------------------------------------


class TestKVWireOps:
    def test_scalar_roundtrip(self, node, remote):
        assert remote.get(b"missing") is None
        remote.put(b"alpha", b"1")
        assert remote.get(b"alpha") == b"1"
        assert remote.contains(b"alpha") and not remote.contains(b"beta")
        assert remote.delete(b"alpha") is True
        assert remote.delete(b"alpha") is False
        assert node.store.get(b"alpha") is None

    def test_batch_roundtrip_and_order(self, node, remote):
        items = [(f"k/{index:03d}".encode(), bytes([index])) for index in range(40)]
        remote.multi_put(items)
        fetched = remote.multi_get([key for key, _ in items] + [b"nope"])
        assert fetched[b"nope"] is None
        assert all(fetched[key] == value for key, value in items)
        assert list(remote.scan_prefix(b"k/")) == items  # key order
        existed = remote.multi_delete([b"k/000", b"k/001", b"zzz"])
        assert existed == {b"k/000", b"k/001"}
        assert len(node.store) == 38

    def test_empty_batches_cost_nothing(self, remote):
        remote.connect()
        remote.wire_stats.reset()
        assert remote.multi_get([]) == {}
        remote.multi_put([])
        assert remote.multi_delete([]) == set()
        assert remote.wire_stats.round_trips == 0

    def test_size_bytes_matches_backing_store(self, node, remote):
        remote.multi_put([(b"a", b"xx"), (b"b", b"yyyy")])
        assert remote.size_bytes() == node.store.size_bytes() == 2 + 2 + 4

    def test_scan_pages_stream_lazily(self, node):
        host, port = node.address
        remote = RemoteKeyValueStore(host, port, timeout=5.0, scan_page_size=4)
        remote.multi_put([(f"s/{index:02d}".encode(), b"v") for index in range(10)])
        remote.wire_stats.reset()
        scan = remote.scan_prefix(b"s/")
        first_three = [next(scan) for _ in range(3)]
        assert [key for key, _ in first_three] == [b"s/00", b"s/01", b"s/02"]
        assert remote.wire_stats.round_trips == 1  # one page pulled so far
        assert len(list(scan)) == 7
        assert remote.wire_stats.round_trips == 3  # 10 keys / 4 per page
        remote.close()

    def test_oversized_batch_splits_but_stays_one_round_trip(self, node):
        host, port = node.address
        remote = RemoteKeyValueStore(host, port, timeout=5.0, max_request_bytes=4096)
        items = [(f"big/{index}".encode(), bytes(1500) + bytes([index])) for index in range(8)]
        remote.connect()
        remote.wire_stats.reset()
        remote.multi_put(items)
        assert remote.wire_stats.requests_sent > 1  # split by payload size
        assert remote.wire_stats.round_trips == 1  # ...but shipped as one batch
        assert remote.multi_get([key for key, _ in items]) == dict(items)
        remote.close()

    def test_hello_advertises_kv_ops_only(self, node):
        host, port = node.address
        with RemoteServerClient(host, port, timeout=5.0) as client:
            for operation in KV_OPERATIONS:
                assert client.supports_operation(operation)
            assert not client.supports_operation("insert_chunks")
            assert not client.supports_operation("put_grants")
            assert client.ping()

    def test_engine_ops_rejected_by_storage_node(self, node):
        host, port = node.address
        with RemoteServerClient(host, port, timeout=5.0) as client:
            with pytest.raises(ProtocolError, match="unsupported operation"):
                client._call(Request("stream_head", {"uuid": "nope"}))

    def test_malformed_kv_requests_rejected(self, node):
        host, port = node.address
        with RemoteServerClient(host, port, timeout=5.0) as client:
            with pytest.raises(ProtocolError):
                client._call(Request("kv_put", {}, [b"key-without-value"]))
            with pytest.raises(ProtocolError):
                client._call(Request("kv_scan_page", {"limit": 0}, [b""]))
            with pytest.raises(ProtocolError):
                client._call(Request("kv_get", {}, []))

    def test_keys_only_scan_skips_value_traffic(self, node):
        host, port = node.address
        remote = RemoteKeyValueStore(host, port, timeout=5.0, scan_page_size=4)
        big_value = bytes(4096)
        remote.multi_put([(f"ko/{index:02d}".encode(), big_value) for index in range(10)])
        assert remote.keys_with_prefix(b"ko/") == [f"ko/{index:02d}".encode() for index in range(10)]
        assert remote.count_prefix(b"ko/") == 10
        keys = list(remote.scan_keys(b"ko/"))
        assert keys == sorted(keys) and len(keys) == 10
        remote.close()

    def test_oversized_multi_get_defers_instead_of_breaking_frames(self, node, monkeypatch):
        import repro.storage.node as node_module

        monkeypatch.setattr(node_module, "RESPONSE_BYTE_CAP", 4096)
        host, port = node.address
        remote = RemoteKeyValueStore(host, port, timeout=5.0)
        items = [(f"ov/{index:02d}".encode(), bytes(1500)) for index in range(9)]
        remote.multi_put(items)
        remote.wire_stats.reset()
        fetched = remote.multi_get([key for key, _ in items] + [b"ov/missing"])
        assert fetched[b"ov/missing"] is None
        assert all(fetched[key] == value for key, value in items)
        # 9 values of 1.5 KiB against a 4 KiB response cap: several deferral
        # waves, each one round trip — never a blown frame, never a timeout.
        assert remote.wire_stats.round_trips > 1
        remote.close()

    def test_scan_pages_byte_capped(self, node, monkeypatch):
        import repro.storage.node as node_module

        monkeypatch.setattr(node_module, "RESPONSE_BYTE_CAP", 4096)
        host, port = node.address
        remote = RemoteKeyValueStore(host, port, timeout=5.0, scan_page_size=1000)
        items = [(f"bc/{index:02d}".encode(), bytes(1500)) for index in range(9)]
        remote.multi_put(items)
        remote.wire_stats.reset()
        assert list(remote.scan_prefix(b"bc/")) == items
        assert remote.wire_stats.round_trips > 1  # byte cap split the pages
        remote.close()

    def test_unencodable_response_answers_with_error(self):
        from repro.net.framing import MAX_FRAME_BYTES
        from repro.net.server import WireDispatcher
        from repro.net.messages import Response

        class _HugeDispatcher(WireDispatcher):
            def _op_ping(self, _request):
                return Response.success({"pong": True}, [bytes(MAX_FRAME_BYTES + 1)])

        with TimeCryptTCPServer(dispatcher=_HugeDispatcher()) as server:
            host, port = server.address
            with RemoteServerClient(host, port, timeout=5.0) as client:
                # The server cannot frame the response; it must answer the
                # correlation id with a typed error, not leave it hanging.
                with pytest.raises(ProtocolError, match="exceeds"):
                    client._call(Request("ping"))

    def test_oversized_single_value_is_caller_error_not_outage(self, node):
        from repro.net.framing import MAX_FRAME_BYTES

        host, port = node.address
        remote = RemoteKeyValueStore(host, port, timeout=5.0)
        remote.connect()
        with pytest.raises(ProtocolError, match="exceeds"):
            remote.put(b"huge", bytes(MAX_FRAME_BYTES + 1))
        # The connection survives (no reconnect churn), the pending table is
        # clean (no ghost correlation ids), and the node keeps serving.
        assert not remote._client._pending
        assert remote.get(b"huge") is None
        remote.close()

    def test_oversized_value_does_not_mark_cluster_nodes_down(self, harness):
        from repro.net.framing import MAX_FRAME_BYTES

        with pytest.raises(ProtocolError):
            harness.cluster.multi_put([(b"huge", bytes(MAX_FRAME_BYTES + 1))])
        assert not harness.cluster._down  # deterministic caller error, no outage
        harness.cluster.put(b"fine", b"v")
        assert harness.cluster.get(b"fine") == b"v"

    def test_malformed_args_get_a_typed_error_not_dead_air(self, node):
        host, port = node.address
        with RemoteServerClient(host, port, timeout=5.0) as client:
            with pytest.raises(ProtocolError, match="dispatch"):
                client._call(Request("kv_scan_page", {"limit": "not-a-number"}, [b""]))
            assert client.ping()  # connection unharmed

    def test_malformed_frame_header_gets_a_typed_error_not_dead_air(self, node):
        import json
        import socket as socket_module

        from repro.net.framing import encode_frame_v2, read_any_frame
        from repro.net.messages import Response

        host, port = node.address
        # A hostile header: null attachment length used to raise TypeError
        # past the dispatcher and leave the correlation id unanswered.
        header = json.dumps({"op": "ping", "args": {}, "attachment_lengths": [None]}).encode()
        from repro.util.encoding import encode_varint

        payload = encode_varint(len(header)) + header
        with socket_module.create_connection((host, port), timeout=5.0) as sock:
            sock.sendall(encode_frame_v2(7, payload))
            frame = read_any_frame(sock)
            assert frame.correlation_id == 7
            response = Response.decode(frame.payload)
            assert not response.ok
            assert response.error_type == "ProtocolError"

    def test_memory_store_scan_from_resumes_by_cursor(self):
        store = MemoryStore()
        store.multi_put([(f"sf/{index:02d}".encode(), bytes([index])) for index in range(10)])
        resumed = list(store.scan_from(b"sf/", after=b"sf/04"))
        assert [key for key, _ in resumed] == [f"sf/{index:02d}".encode() for index in range(5, 10)]
        assert list(store.scan_from(b"sf/", after=None)) == list(store.scan_prefix(b"sf/"))
        assert list(store.scan_from(b"sf/", after=b"sf/99")) == []
        # The sorted-key cache invalidates on every mutation flavour.
        store.put(b"sf/10", b"new")
        assert list(store.scan_from(b"sf/", after=b"sf/08"))[-1][0] == b"sf/10"
        store.delete(b"sf/10")
        store.multi_put([(b"sf/11", b"x")])
        assert [key for key, _ in store.scan_from(b"sf/", after=b"sf/09")] == [b"sf/11"]
        store.multi_delete([b"sf/11"])
        assert list(store.scan_from(b"sf/", after=b"sf/09")) == []

    def test_scan_from_cursor_is_strictly_exclusive_for_equal_prefix(self):
        # Regression: the cursor must be exclusive by *value*, including the
        # aliased/interned b"" case — a re-yielded cursor key would make the
        # remote pager loop on the same page forever.
        store = MemoryStore()
        store.put(b"", b"empty-key")
        store.put(b"a", b"1")
        assert [key for key, _ in store.scan_from(b"", after=b"")] == [b"a"]
        assert [key for key, _ in store.scan_from(b"a", after=b"a")] == []

    def test_append_log_store_scan_flavours(self, tmp_path):
        from repro.storage.disk import AppendLogStore

        store = AppendLogStore(tmp_path / "node.log")
        items = [(f"al/{index:02d}".encode(), bytes(50 + index)) for index in range(10)]
        store.multi_put(items)
        store.delete(b"al/03")
        expected = [(key, value) for key, value in items if key != b"al/03"]
        assert list(store.scan_keys(b"al/")) == [key for key, _ in expected]
        assert list(store.scan_key_sizes(b"al/")) == [
            (key, len(key) + len(value)) for key, value in expected
        ]
        assert list(store.scan_sizes_from(b"al/", after=b"al/05")) == [
            (key, len(value)) for key, value in expected if key > b"al/05"
        ]
        assert list(store.scan_from(b"al/", after=b"al/05")) == [
            (key, value) for key, value in expected if key > b"al/05"
        ]
        store.close()

    def test_remote_node_over_append_log_store(self, tmp_path):
        from repro.storage.disk import AppendLogStore

        store = AppendLogStore(tmp_path / "remote-node.log")
        with StorageNodeServer(store) as server:
            host, port = server.address
            remote = RemoteKeyValueStore(host, port, timeout=5.0, scan_page_size=3)
            items = [(f"p/{index:02d}".encode(), bytes([index]) * 20) for index in range(8)]
            remote.multi_put(items)
            assert list(remote.scan_prefix(b"p/")) == items
            assert list(remote.scan_keys(b"p/")) == [key for key, _ in items]
            assert remote.size_bytes() == store.size_bytes()
            remote.close()
        store.close()

    def test_concurrent_clients_against_append_log_node(self, tmp_path):
        """The dispatcher serializes store access: the non-thread-safe
        AppendLogStore must survive concurrent reads and writes from the
        server's worker pool without torn reads or index corruption."""
        from repro.storage.disk import AppendLogStore

        store = AppendLogStore(tmp_path / "concurrent.log")
        errors = []
        with StorageNodeServer(store, max_workers=4) as server:
            host, port = server.address

            def worker(worker_id: int) -> None:
                remote = RemoteKeyValueStore(host, port, timeout=10.0)
                try:
                    items = [
                        (f"c{worker_id}/{index:03d}".encode(), f"{worker_id}:{index}".encode() * 10)
                        for index in range(40)
                    ]
                    remote.multi_put(items)
                    fetched = remote.multi_get([key for key, _ in items])
                    assert all(fetched[key] == value for key, value in items)
                    for key, value in items[:5]:
                        assert remote.get(key) == value
                except Exception as exc:  # surfaced below, pytest-safe
                    errors.append(exc)
                finally:
                    remote.close()

            threads = [threading.Thread(target=worker, args=(index,)) for index in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert not errors
        assert len(store) == 4 * 40
        store.close()

    def test_multi_put_respects_key_count_cap(self, node):
        host, port = node.address
        remote = RemoteKeyValueStore(host, port, timeout=5.0, max_keys_per_request=10)
        items = [(f"cc/{index:03d}".encode(), b"v") for index in range(35)]
        remote.connect()
        remote.wire_stats.reset()
        remote.multi_put(items)
        assert remote.wire_stats.requests_sent == 4  # 35 items / 10 per part
        assert remote.wire_stats.round_trips == 1
        assert remote.multi_get([key for key, _ in items]) == dict(items)
        remote.close()

    def test_engine_server_refused_as_storage_node(self):
        engine = ServerEngine()
        with TimeCryptTCPServer(engine) as server:
            host, port = server.address
            store = RemoteKeyValueStore(host, port, timeout=5.0)
            # A reachable peer of the wrong tier is a configuration error
            # (non-retryable ProtocolError), not an outage the cluster
            # should mark down and redial.
            with pytest.raises(ProtocolError, match="does not serve the kv"):
                store.get(b"anything")

    def test_engine_hello_no_longer_advertises_kv_ops(self):
        engine = ServerEngine()
        with TimeCryptTCPServer(engine) as server:
            host, port = server.address
            with RemoteServerClient(host, port, timeout=5.0) as client:
                assert client.supports_operation("insert_chunks")
                assert not client.supports_operation("kv_multi_put")


class TestRemoteStoreFailures:
    def test_dead_node_raises_storage_error(self):
        store = MemoryStore()
        with StorageNodeServer(store) as server:
            host, port = server.address
        # Server stopped; the port is closed.
        remote = RemoteKeyValueStore(host, port, timeout=1.0)
        with pytest.raises(StorageError, match="unreachable"):
            remote.get(b"key")

    def test_reconnect_after_restart_with_continuous_stats(self):
        store = MemoryStore()
        server = StorageNodeServer(store).start()
        host, port = server.address
        remote = RemoteKeyValueStore(host, port, timeout=2.0)
        remote.put(b"k", b"v")
        trips_before = remote.wire_stats.round_trips
        server.stop()
        with pytest.raises(StorageError):
            remote.get(b"k")
        server = StorageNodeServer(store, port=port).start()
        try:
            assert remote.get(b"k") == b"v"  # transparently redialed
            assert remote.wire_stats.round_trips > trips_before
        finally:
            remote.close()
            server.stop()

    def test_ping_and_hello_not_blocked_by_busy_store(self):
        """Liveness and negotiation must answer while kv ops hold the store lock."""
        release = threading.Event()
        entered = threading.Event()

        class _BlockingStore(MemoryStore):
            def get(self, key):
                entered.set()
                release.wait(timeout=10)
                return super().get(key)

        store = _BlockingStore()
        with StorageNodeServer(store, max_workers=4) as server:
            host, port = server.address
            slow = RemoteKeyValueStore(host, port, timeout=10.0)
            blocker = threading.Thread(target=lambda: slow.get(b"slow"))
            blocker.start()
            try:
                assert entered.wait(timeout=5)  # kv_get now holds the store lock
                # A fresh client must still negotiate (hello) and ping.
                probe = RemoteKeyValueStore(host, port, timeout=2.0)
                assert probe.ping()
                probe.close()
            finally:
                release.set()
                blocker.join(timeout=5)
                slow.close()

    def test_dead_reader_fails_fast_not_by_timeout(self):
        store = MemoryStore()
        server = StorageNodeServer(store).start()
        host, port = server.address
        remote = RemoteKeyValueStore(host, port, timeout=30.0)
        assert remote.get(b"warm") is None
        client = remote._client
        server.stop()
        client._reader.join(timeout=5)  # reader sees EOF and exits
        begin = time.monotonic()
        with pytest.raises(StorageError):
            remote.get(b"key")
        # Registration-after-dead-reader is detected immediately; without
        # the liveness check this would stall the full 30 s timeout.
        assert time.monotonic() - begin < 10
        remote.close()

    def test_mid_session_kill_maps_to_storage_error(self):
        store = MemoryStore()
        server = StorageNodeServer(store).start()
        host, port = server.address
        remote = RemoteKeyValueStore(host, port, timeout=1.0)
        assert remote.get(b"warm") is None  # connection established
        server.stop()
        with pytest.raises(StorageError):
            remote.multi_put([(b"a", b"b")])
        remote.close()


# ---------------------------------------------------------------------------
# StorageCluster over real sockets
# ---------------------------------------------------------------------------


def _mirrored_workload(engine_a: ServerEngine, engine_b: ServerEngine) -> str:
    """Drive an identical mixed workload into both engines.

    Chunks are encrypted exactly once (key material is random per stream, so
    running the pipeline twice would diverge) and every resulting artifact —
    encrypted chunks, sealed grants, key envelopes, deletes, rollups — is
    delivered to both engines, so their storage contents must be
    byte-identical however the backing store is deployed.
    """
    owner = TimeCrypt(server=engine_a, owner_id="alice")
    config = StreamConfig(chunk_interval=1_000)
    uuid = owner.create_stream(metric="mixed", config=config, uuid="equivalence-stream")
    engine_b.create_stream(owner._streams[uuid].metadata)
    writer = owner._streams[uuid].writer
    sink_a, batch_a = writer.sink, writer.batch_sink
    writer.sink = lambda chunk: (sink_a(chunk), engine_b.insert_chunk(chunk))[0]
    writer.batch_sink = lambda chunks: (batch_a(chunks), engine_b.insert_chunks(chunks))[0]

    owner.insert_records(uuid, [(t, float(t % 37)) for t in range(0, 24_000, 250)])
    owner.flush(uuid)

    # Full-resolution and resolution-restricted grants, sealed once, parked
    # on both servers (grant ids are assigned deterministically).
    bob = Principal.create("equivalence-bob")
    carol = Principal.create("equivalence-carol")
    owner.register_principal(bob)
    owner.register_principal(carol)
    owner.grant_access(uuid, bob.principal_id, 0, 16_000)
    owner.grant_access(uuid, carol.principal_id, 0, 16_000, resolution_interval=4_000)
    for principal in (bob, carol):
        for sealed in engine_a.fetch_grants(uuid, principal.principal_id):
            engine_b.put_grant(uuid, principal.principal_id, sealed)
    resolution_chunks = 4_000 // 1_000
    envelopes = engine_a.fetch_envelopes(uuid, resolution_chunks, 0, 16)
    if envelopes:
        engine_b.token_store.put_envelopes(uuid, resolution_chunks, envelopes)

    # Query on both (also exercises the read path over the remote tier).
    from repro.util.timeutil import TimeRange

    for engine in (engine_a, engine_b):
        assert engine.stream_head(uuid) == 24
        engine.stat_range(uuid, TimeRange(0, 24_000))

    # Deletes and rollups land on both.
    owner.delete_range(uuid, 2_000, 5_000)
    engine_b.delete_range(uuid, TimeRange(2_000, 5_000))
    owner.rollup_stream(uuid, 2_000, before_time=8_000)
    engine_b.rollup_stream(uuid, 2, 8_000)
    return uuid


class TestRemoteCluster:
    def test_byte_identity_with_in_process_cluster(self, harness):
        inproc = StorageCluster(num_nodes=3, replication_factor=2)
        engine_remote = ServerEngine(
            store=harness.cluster, token_store=TokenStore(harness.cluster)
        )
        engine_inproc = ServerEngine(store=inproc, token_store=TokenStore(inproc))
        _mirrored_workload(engine_inproc, engine_remote)
        local = list(inproc.scan_prefix(b""))
        over_wire = list(harness.cluster.scan_prefix(b""))
        assert local, "workload stored nothing"
        assert over_wire == local
        assert harness.cluster.size_bytes() == inproc.size_bytes()
        # Per-replica contents match node by node too (same ring layout).
        for name in inproc.node_names:
            assert list(harness.backing[name].scan_prefix(b"")) == list(
                inproc.node_store(name).scan_prefix(b"")
            )
        inproc.close()

    def test_cluster_batch_round_trips_per_node(self, harness):
        items = [(f"rt/{index:04d}".encode(), bytes(32)) for index in range(200)]
        for name in harness.cluster.node_names:
            harness.cluster.node_store(name).connect()
            harness.cluster.node_store(name).wire_stats.reset()
        harness.cluster.multi_put(items)
        rf = harness.cluster.replication_factor
        for name in harness.cluster.node_names:
            trips = harness.cluster.node_store(name).wire_stats.round_trips
            assert 1 <= trips <= rf + 1, (name, trips)  # not n·RF
        for name in harness.cluster.node_names:
            harness.cluster.node_store(name).wire_stats.reset()
        fetched = harness.cluster.multi_get([key for key, _ in items])
        assert all(fetched[key] == value for key, value in items)
        for name in harness.cluster.node_names:
            trips = harness.cluster.node_store(name).wire_stats.round_trips
            assert trips <= rf + 1, (name, trips)

    def test_node_kill_reroute_restart_repair(self, harness):
        cluster = harness.cluster
        first = [(f"a/{index:03d}".encode(), bytes([index % 251])) for index in range(60)]
        cluster.multi_put(first)
        harness.kill("node-1")
        second = [(f"b/{index:03d}".encode(), bytes([index % 251])) for index in range(60)]
        cluster.multi_put(second)  # socket failure -> mark-down -> re-route
        assert "node-1" in cluster._down
        fetched = cluster.multi_get([key for key, _ in first + second])
        assert all(fetched[key] == value for key, value in first + second)
        harness.restart("node-1")
        replayed = cluster.mark_up("node-1")
        assert replayed > 0  # hints parked during the outage heal it over the wire
        repaired = cluster.repair_node("node-1", batch_size=16)
        assert repaired == 0  # ...leaving repair nothing to backfill
        # The recovered node now holds every key the ring assigns to it.
        ring = cluster._ring
        for key, value in first + second:
            if "node-1" in ring.replicas(key, cluster.replication_factor):
                assert harness.backing["node-1"].get(key) == value
        fetched = cluster.multi_get([key for key, _ in first + second])
        assert all(fetched[key] == value for key, value in first + second)

    def test_scan_paths_survive_node_outage(self, harness):
        cluster = harness.cluster
        items = [(f"sc/{index:03d}".encode(), bytes(100)) for index in range(80)]
        cluster.multi_put(items)
        expected_size = cluster.size_bytes()
        harness.kill("node-0")
        # Scan-based paths mark the dead node down and keep going on the
        # surviving replicas, exactly like the batch ops.
        assert cluster.size_bytes() == expected_size
        assert "node-0" in cluster._down
        assert dict(cluster.scan_prefix(b"sc/")) == dict(items)
        # repair of a *different* node also works while node-0 is dead.
        assert cluster.repair_node("node-1") == 0

    def test_scan_with_every_node_dead_raises_partition_error(self, harness):
        from repro.exceptions import PartitionError

        cluster = harness.cluster
        cluster.multi_put([(b"dead/key", b"value")])
        for name in list(harness.servers):
            harness.kill(name)
        # A dead cluster must not masquerade as an empty one (engine
        # recovery over the store would silently "find" zero streams).
        with pytest.raises(PartitionError):
            list(cluster.scan_prefix(b""))
        with pytest.raises(PartitionError):
            cluster.size_bytes()

    def test_size_bytes_over_wire_ships_no_values(self, harness):
        cluster = harness.cluster
        cluster.multi_put([(f"sz/{index:02d}".encode(), bytes(10_000)) for index in range(20)])
        for name in cluster.node_names:
            cluster.node_store(name).wire_stats.reset()
        size = cluster.size_bytes()
        assert size == 20 * (5 + 10_000)
        # Keys-only pages: the whole sizing pass moved far fewer bytes than
        # the values it accounted for (sizes travel as header integers).
        # One page round trip per node is enough for 20 keys.
        for name in cluster.node_names:
            assert cluster.node_store(name).wire_stats.round_trips <= 2

    def test_scalar_ops_fail_over_like_batches(self, harness):
        """Scalar get/put/delete mark a dead node down and use the survivors."""
        cluster = harness.cluster
        cluster.multi_put([(f"sv/{index:02d}".encode(), bytes([index])) for index in range(30)])
        harness.kill("node-2")
        for index in range(30):
            assert cluster.get(f"sv/{index:02d}".encode()) == bytes([index])
        assert "node-2" in cluster._down
        cluster.put(b"sv/new", b"routed-around")
        assert cluster.get(b"sv/new") == b"routed-around"
        assert cluster.delete(b"sv/new") is True

    def test_v1_only_peer_is_retryable_outage_not_config_error(self):
        from test_net_pipeline import _V1OnlyServer

        engine = ServerEngine()
        with _V1OnlyServer(engine) as server:
            host, port = server.address
            store = RemoteKeyValueStore(host, port, timeout=2.0)
            # The transport's v1 downgrade fires for a dropped-mid-hello
            # connection — what a restarting node looks like — so it maps
            # to the retryable StorageError, never the wrong-tier error.
            with pytest.raises(StorageError, match="negotiation"):
                store.get(b"anything")

    def test_concurrent_fan_out(self, harness):
        cluster = harness.cluster
        errors = []

        def worker(worker_id: int) -> None:
            try:
                items = [
                    (f"w{worker_id}/{index:03d}".encode(), f"{worker_id}:{index}".encode())
                    for index in range(50)
                ]
                cluster.multi_put(items)
                fetched = cluster.multi_get([key for key, _ in items])
                assert all(fetched[key] == value for key, value in items)
            except Exception as exc:  # surfaced below, pytest-safe
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(index,)) for index in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert sum(1 for _ in cluster.scan_prefix(b"w")) == 6 * 50


# ---------------------------------------------------------------------------
# Streaming scan / repair and lifecycle edges (in-process clusters)
# ---------------------------------------------------------------------------


class _CountingStore(MemoryStore):
    """MemoryStore that counts how many scan items it actually yielded."""

    def __init__(self) -> None:
        super().__init__()
        self.scan_yields = 0

    def scan_prefix(self, prefix: bytes) -> Iterator[Tuple[bytes, bytes]]:
        for item in super().scan_prefix(prefix):
            self.scan_yields += 1
            yield item


class TestClusterStreamingAndLifecycle:
    def test_scan_prefix_streams_lazily(self):
        stores: Dict[str, _CountingStore] = {}

        def factory(name: str) -> _CountingStore:
            stores[name] = _CountingStore()
            return stores[name]

        cluster = StorageCluster(num_nodes=3, replication_factor=2, store_factory=factory)
        cluster.multi_put([(f"lazy/{index:04d}".encode(), b"v") for index in range(300)])
        for store in stores.values():
            store.scan_yields = 0
        scan = cluster.scan_prefix(b"lazy/")
        for _ in range(5):
            next(scan)
        # A materializing implementation would have pulled all 600 replicated
        # items; the heap merge pulls only what the consumer asked for (plus
        # one lookahead per iterator).
        assert sum(store.scan_yields for store in stores.values()) <= 5 * 2 + 3
        cluster.close()

    def test_scan_dedup_when_replicas_disagree(self):
        cluster = StorageCluster(num_nodes=3, replication_factor=2)
        cluster.put(b"agreed", b"same")
        # Simulate a partial failure: one replica took a newer write the
        # other missed, and another key reached only a single replica.
        cluster.node_store("node-0").put(b"contested", b"from-node-0")
        cluster.node_store("node-2").put(b"contested", b"from-node-2")
        cluster.node_store("node-1").put(b"orphan", b"only-copy")
        merged = dict(cluster.scan_prefix(b""))
        assert merged[b"agreed"] == b"same"
        assert merged[b"contested"] == b"from-node-0"  # lowest node wins, deterministically
        assert merged[b"orphan"] == b"only-copy"
        assert len(list(cluster.scan_prefix(b""))) == len(merged)
        cluster.close()

    def test_repair_node_while_still_marked_down(self):
        cluster = StorageCluster(num_nodes=3, replication_factor=2)
        cluster.multi_put([(f"k/{index:03d}".encode(), bytes([index])) for index in range(50)])
        cluster.mark_down("node-2")
        cluster.node_store("node-2").clear()
        more = [(f"m/{index:03d}".encode(), bytes([index])) for index in range(30)]
        cluster.multi_put(more)  # written around the downed node
        # Repair before mark_up: the store is reachable, so healing works;
        # reads keep avoiding the node until it is marked up.
        repaired = cluster.repair_node("node-2", batch_size=7)
        assert repaired > 0
        cluster.mark_up("node-2")
        ring = cluster._ring
        for key, value in more:
            if "node-2" in ring.replicas(key, cluster.replication_factor):
                assert cluster.node_store("node-2").get(key) == value
        fetched = cluster.multi_get([key for key, _ in more])
        assert all(fetched[key] == value for key, value in more)
        cluster.close()

    def test_repair_node_validates_arguments(self):
        cluster = StorageCluster(num_nodes=2, replication_factor=2)
        with pytest.raises(ValueError):
            cluster.repair_node("node-9")
        with pytest.raises(ValueError):
            cluster.repair_node("node-0", batch_size=0)
        cluster.close()

    def test_repair_is_idempotent(self):
        cluster = StorageCluster(num_nodes=3, replication_factor=2)
        cluster.multi_put([(f"i/{index}".encode(), b"v") for index in range(40)])
        assert cluster.repair_node("node-0") == 0  # nothing missing
        assert cluster.repair_node("node-0") == 0
        cluster.close()

    def test_close_is_idempotent_and_cluster_reusable(self):
        cluster = StorageCluster(num_nodes=3, replication_factor=2)
        cluster.multi_put([(b"before", b"close")])
        cluster.close()
        cluster.close()  # second close is a no-op
        # Post-close reuse: the fan-out pool is rebuilt lazily and the node
        # stores accept traffic again (remote stores would simply redial).
        cluster.multi_put([(f"after/{index}".encode(), b"v") for index in range(20)])
        assert cluster.get(b"before") == b"close"
        assert cluster.multi_get([b"after/0"])[b"after/0"] == b"v"
        cluster.close()

    def test_remote_cluster_close_then_reuse(self, harness):
        harness.cluster.multi_put([(b"x", b"1")])
        harness.cluster.close()
        assert harness.cluster.get(b"x") == b"1"  # redials after close


# ---------------------------------------------------------------------------
# Consumer cold-start warm-up
# ---------------------------------------------------------------------------


def _grant_two_streams(server) -> Tuple[TimeCrypt, Principal, str, str]:
    owner = TimeCrypt(server=server, owner_id="alice")
    config = StreamConfig(chunk_interval=1_000)
    full = owner.create_stream(metric="full", config=config)
    restricted = owner.create_stream(metric="restricted", config=config)
    for uuid in (full, restricted):
        owner.insert_records(uuid, [(t, float(t % 11)) for t in range(0, 8_000, 250)])
        owner.flush(uuid)
    bob = Principal.create("warmup-bob")
    owner.register_principal(bob)
    owner.grant_access(full, bob.principal_id, 0, 8_000)
    owner.grant_access(restricted, bob.principal_id, 0, 8_000, resolution_interval=2_000)
    return owner, bob, full, restricted


class TestConsumerWarmUp:
    def test_warm_up_over_the_wire_is_two_round_trips(self):
        engine = ServerEngine()
        with TimeCryptTCPServer(engine) as server:
            host, port = server.address
            with RemoteServerClient(host, port, timeout=5.0) as remote:
                _owner, bob, full, restricted = _grant_two_streams(remote)
                consumer = TimeCryptConsumer(server=remote, principal=bob)
                remote.wire_stats.reset()
                tokens = consumer.warm_up([full, restricted])
                # RT 1: grants + metadata for both streams; RT 2: envelopes
                # for the restricted one.  Not one per call site.
                assert remote.wire_stats.round_trips == 2
                assert set(tokens) == {full, restricted}
                assert consumer.get_stat_range(full, 0, 8_000)["count"] == 32
                assert consumer.get_stat_range(restricted, 0, 8_000)["count"] == 32

    def test_warm_up_full_resolution_only_is_one_round_trip(self):
        engine = ServerEngine()
        with TimeCryptTCPServer(engine) as server:
            host, port = server.address
            with RemoteServerClient(host, port, timeout=5.0) as remote:
                _owner, bob, full, _restricted = _grant_two_streams(remote)
                consumer = TimeCryptConsumer(server=remote, principal=bob)
                remote.wire_stats.reset()
                consumer.warm_up([full])
                assert remote.wire_stats.round_trips == 1

    def test_session_cache_stops_metadata_refetches(self):
        engine = ServerEngine()
        with TimeCryptTCPServer(engine) as server:
            host, port = server.address
            with RemoteServerClient(host, port, timeout=5.0) as remote:
                _owner, bob, full, restricted = _grant_two_streams(remote)
                consumer = TimeCryptConsumer(server=remote, principal=bob)
                consumer.warm_up([full, restricted])
                remote.wire_stats.reset()
                # Config-dependent call sites hit the session cache now.
                consumer.get_stat_series(full, 0, 8_000, granularity_interval=2_000)
                assert remote.wire_stats.round_trips == 1  # the query only
                # A later warm_up skips the cached metadata too.
                tokens = consumer.warm_up([full])
                assert set(tokens) == {full}
                remote.wire_stats.reset()
                consumer.fetch_access(full)  # config argument omitted
                assert remote.wire_stats.round_trips == 1  # grants only, no metadata

    def test_warm_up_falls_back_without_pipeline(self):
        engine = ServerEngine()
        _owner, bob, full, restricted = _grant_two_streams(engine)
        consumer = TimeCryptConsumer(server=engine, principal=bob)
        tokens = consumer.warm_up([restricted, full, full])  # dupes collapse
        assert set(tokens) == {full, restricted}
        assert consumer.get_stat_range(full, 0, 8_000)["count"] == 32

    def test_warm_up_without_grant_raises(self):
        engine = ServerEngine()
        _owner, _bob, full, _restricted = _grant_two_streams(engine)
        stranger = Principal.create("warmup-stranger")
        consumer = TimeCryptConsumer(server=engine, principal=stranger)
        from repro.exceptions import AccessDeniedError

        with pytest.raises(AccessDeniedError):
            consumer.warm_up([full])

    def test_warm_up_partial_failure_keeps_granted_streams(self):
        """One stream without a grant must not void the others' cold start."""
        engine = ServerEngine()
        with TimeCryptTCPServer(engine) as server:
            host, port = server.address
            with RemoteServerClient(host, port, timeout=5.0) as remote:
                owner, bob, full, restricted = _grant_two_streams(remote)
                ungranted = owner.create_stream(metric="ungranted", config=StreamConfig(chunk_interval=1_000))
                consumer = TimeCryptConsumer(server=remote, principal=bob)
                tokens = consumer.warm_up([full, ungranted, restricted, "no-such-stream"])
                assert set(tokens) == {full, restricted}
                assert consumer.get_stat_range(full, 0, 8_000)["count"] == 32
