"""Request scheduling, credit-based flow control, and typed overload shedding.

Covers the QoS layer added to :class:`~repro.net.server.TimeCryptTCPServer`:

- frame classification (bulk vs. interactive) and header peeking,
- the client-side credit gate (window never goes negative, grants clamp),
- typed ``overloaded`` responses when the bulk queue is full — a shed is a
  prompt, typed answer, never a timeout or a dead correlation id,
- weighted dispatch: interactive ops answer while bulk traffic saturates
  the workers,
- v1 (lockstep) clients served unchanged by a weighted server,
- capped-backoff retry of shed requests in the v2 client,
- sliced dispatch of giant ingest batches (engine lock released between
  slices, validation per slice),
- the storage tier mapping a shed to :class:`StorageError` once retries
  are exhausted, and
- the router's concurrent cross-shard fan-out.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro import ServerEngine, TimeCrypt
from repro.exceptions import (
    OverloadedError,
    StorageError,
    StreamNotFoundError,
)
from repro.net.client import RemoteServerClient, _CreditGate
from repro.net.messages import (
    BULK_OPERATIONS,
    Request,
    Response,
    ShardRoutingTable,
    classify_operation,
    peek_operation,
)
from repro.net.server import RequestDispatcher, TimeCryptTCPServer, WireDispatcher
from repro.server.router import RouterDispatcher, RoutingTableRef
from repro.storage.memory import MemoryStore
from repro.storage.node import StorageNodeServer
from repro.storage.remote import RemoteKeyValueStore
from repro.timeseries.serialization import encode_encrypted_chunk
from repro.timeseries.stream import StreamConfig
from repro.util.timeutil import TimeRange

CHUNK_INTERVAL = 1_000


def _wait_until(predicate, timeout: float = 5.0, interval: float = 0.005) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError("condition not reached within timeout")


class _GatedDispatcher(WireDispatcher):
    """Bulk ops block on an event; completion order is recorded.

    Deliberately engine-free: these tests exercise the transport's
    scheduling, not the engine, so handlers are trivial and hold no lock.
    """

    def __init__(self) -> None:
        self.release = threading.Event()
        self.order = []
        self._order_lock = threading.Lock()

    def _op_insert_chunks(self, request: Request) -> Response:
        self.release.wait(10)
        with self._order_lock:
            self.order.append("bulk")
        return Response.success({"window_index": 0, "num_chunks": len(request.attachments)})

    def _op_stream_head(self, _request: Request) -> Response:
        with self._order_lock:
            self.order.append("interactive")
        return Response.success({"head": 0})


class _FlakyDispatcher(WireDispatcher):
    """Sheds the first ``sheds`` stream_head calls, then answers."""

    def __init__(self, sheds: int) -> None:
        self._sheds = sheds
        self.attempts = 0

    def _op_stream_head(self, _request: Request) -> Response:
        self.attempts += 1
        if self.attempts <= self._sheds:
            response = Response.failure(OverloadedError("busy", retry_after_ms=5))
            response.result = {"retry_after_ms": 5, "queue": "interactive"}
            return response
        return Response.success({"head": 7})


# -- classification and peeking ------------------------------------------------------


def test_classify_operation():
    assert classify_operation("insert_chunks") == "bulk"
    assert classify_operation("kv_multi_put") == "bulk"
    assert classify_operation("rollup_stream") == "bulk"
    assert classify_operation("stat_range") == "interactive"
    assert classify_operation("kv_multi_get") == "interactive"  # query fetches ride on it
    assert classify_operation("hello") == "interactive"
    assert classify_operation(None) == "interactive"
    assert BULK_OPERATIONS.isdisjoint({"hello", "ping", "stat_range", "get_range"})


def test_peek_operation_reads_only_the_header():
    payload = Request("insert_chunks", {"x": 1}, [b"\x00" * 64]).encode()
    assert peek_operation(payload) == "insert_chunks"
    assert peek_operation(b"\x05notjs") is None
    assert peek_operation(b"") is None


# -- the credit gate -----------------------------------------------------------------


def test_credit_gate_never_negative_and_grants_clamp():
    gate = _CreditGate(4)
    assert gate.window == 4 and gate.available == 4
    assert gate.acquire(10, timeout=1.0) == 4  # clamped to what's available
    assert gate.available == 0
    assert gate.acquire(1, timeout=0.05) == 0  # timeout, not a negative balance
    gate.grant(2)
    assert gate.available == 2
    gate.grant(100)  # clamps at the window, never beyond
    assert gate.available == 4
    assert gate.acquire(3, timeout=1.0) == 3
    assert gate.available == 1


def test_hello_advertises_credits():
    engine = ServerEngine()
    with TimeCryptTCPServer(engine, credit_window=7) as server:
        host, port = server.address
        with RemoteServerClient(host, port) as remote:
            assert remote.hello_info.get("credits") == 7
            assert remote.credit_window == 7
            assert remote.credits_available == 7
    # In-process dispatch advertises no credits: there is no transport to pace.
    hello = RequestDispatcher(ServerEngine()).dispatch(Request("hello"))
    assert "credits" not in hello.result


# -- typed overload shedding ---------------------------------------------------------


def test_full_bulk_queue_sheds_typed_not_timeout():
    dispatcher = _GatedDispatcher()
    with TimeCryptTCPServer(
        dispatcher=dispatcher, max_workers=1, bulk_queue_limit=2, retry_after_ms=40
    ) as server:
        host, port = server.address
        with RemoteServerClient(host, port, flow_control=False, overload_retries=0) as remote:
            offered = 16
            requests = [Request("insert_chunks", {}, [b"\x00"]) for _ in range(offered)]
            futures = remote._send_requests(requests)
            # Sheds must arrive while the lone worker is still blocked: the
            # backpressure signal does not queue behind saturated dispatch.
            _wait_until(lambda: sum(f.done() for f in futures) >= offered - 4)
            dispatcher.release.set()
            responses = [future.result(timeout=10) for future in futures]

        ok = [r for r in responses if r.ok]
        shed = [r for r in responses if not r.ok]
        # Zero silent drops: every correlation id answered, every failure typed.
        assert len(ok) + len(shed) == offered
        assert ok and shed
        assert all(r.error_type == "OverloadedError" for r in shed)
        assert all(r.result["retry_after_ms"] == 40 for r in shed)
        assert all(r.result["queue"] == "bulk" for r in shed)

        stats = server.scheduler_stats()
        assert stats["shed_bulk"] == len(shed)
        assert stats["dispatched_bulk"] == len(ok)
        assert stats["max_depth_bulk"] <= 2


def test_interactive_answers_while_bulk_saturated():
    dispatcher = _GatedDispatcher()
    with TimeCryptTCPServer(dispatcher=dispatcher, max_workers=1, bulk_queue_limit=64) as server:
        host, port = server.address
        with RemoteServerClient(host, port, flow_control=False) as remote:
            bulk_futures = remote._send_requests(
                [Request("insert_chunks", {}, [b"\x00"]) for _ in range(6)]
            )
            _wait_until(
                lambda: server.scheduler_stats()["dispatched_bulk"] >= 1
                and server.scheduler_stats()["enqueued_bulk"] == 6
            )
            head_future = remote._send_requests([Request("stream_head", {"uuid": "s"})])[0]
            # enqueued_interactive is 2: the connect-time hello plus this head.
            _wait_until(lambda: server.scheduler_stats()["enqueued_interactive"] == 2)
            dispatcher.release.set()
            assert head_future.result(timeout=10).ok
            assert all(f.result(timeout=10).ok for f in bulk_futures)

    # One worker makes the drain order deterministic: the in-flight bulk
    # request finishes first, then weighted round-robin picks the lone
    # interactive request ahead of the five queued bulk requests.
    assert dispatcher.order[0] == "bulk"
    assert dispatcher.order.index("interactive") == 1


def test_overload_retry_backoff_then_success():
    dispatcher = _FlakyDispatcher(sheds=2)
    with TimeCryptTCPServer(dispatcher=dispatcher) as server:
        host, port = server.address
        with RemoteServerClient(host, port, overload_retries=4) as remote:
            assert remote.stream_head("s") == 7
            assert remote.wire_stats.overload_retries == 2
            assert dispatcher.attempts == 3


def test_overload_surfaces_typed_when_retries_exhausted():
    dispatcher = _FlakyDispatcher(sheds=100)
    with TimeCryptTCPServer(dispatcher=dispatcher) as server:
        host, port = server.address
        with RemoteServerClient(host, port, overload_retries=1) as remote:
            with pytest.raises(OverloadedError) as excinfo:
                remote.stream_head("s")
            assert excinfo.value.retry_after_ms == 5


# -- credit-based flow control over the wire -----------------------------------------


def test_credit_window_paces_the_sender():
    dispatcher = _GatedDispatcher()
    with TimeCryptTCPServer(dispatcher=dispatcher, max_workers=2, credit_window=4) as server:
        host, port = server.address
        with RemoteServerClient(host, port) as remote:
            assert remote.credit_window == 4
            requests = [Request("insert_chunks", {}, [b"\x00"]) for _ in range(12)]
            futures_box = {}

            def send():
                futures_box["futures"] = remote._send_requests(requests)

            sender = threading.Thread(target=send)
            sender.start()
            # The first burst (= the window) goes out, then the sender stalls:
            # no responses yet, so no credits come back.
            _wait_until(lambda: remote.wire_stats.credit_stalls >= 1)
            assert remote.credits_available == 0
            dispatcher.release.set()
            sender.join(timeout=10)
            assert not sender.is_alive()
            responses = [f.result(timeout=10) for f in futures_box["futures"]]
            assert all(r.ok for r in responses)
            # Every response granted its credit back: the gate refills exactly
            # to the window, never beyond it.
            assert remote.credits_available == 4
        assert server.scheduler_stats()["max_in_flight"] <= 4


def test_credit_window_never_negative_under_concurrent_call_many():
    engine = ServerEngine()
    with TimeCryptTCPServer(engine, credit_window=4) as server:
        host, port = server.address
        with RemoteServerClient(host, port) as remote:
            errors = []

            def burst():
                try:
                    responses = remote.call_many([Request("ping") for _ in range(8)])
                    assert all(r.ok for r in responses)
                except Exception as exc:  # noqa: BLE001 — collected for the main thread
                    errors.append(exc)

            threads = [threading.Thread(target=burst) for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=20)
            assert not errors
            assert remote.credits_available == remote.credit_window == 4
        assert server.scheduler_stats()["max_in_flight"] <= 4


def test_v1_lockstep_client_still_served_by_weighted_server():
    engine = ServerEngine()
    with TimeCryptTCPServer(engine) as server:
        host, port = server.address
        with RemoteServerClient(host, port, protocol_version=1) as remote:
            assert remote.protocol_version == 1
            assert remote.credit_window == 0  # no credits on the lockstep wire
            assert remote.ping()
            with pytest.raises(StreamNotFoundError):
                remote.stream_head("missing")


# -- sliced giant-ingest dispatch ----------------------------------------------------


def _encrypted_chunks(num_chunks: int):
    engine = ServerEngine()
    owner = TimeCrypt(server=engine, owner_id="alice")
    config = StreamConfig(chunk_interval=CHUNK_INTERVAL, key_tree_height=16)
    uuid = owner.create_stream(metric="sliced", config=config)
    step = CHUNK_INTERVAL // 4
    owner.insert_records(
        uuid, [(t, float(t % 97)) for t in range(0, num_chunks * CHUNK_INTERVAL, step)]
    )
    owner.flush(uuid)
    chunks = engine.get_range(uuid, TimeRange(0, num_chunks * CHUNK_INTERVAL))
    assert len(chunks) == num_chunks
    return engine.stream_metadata(uuid), chunks


def test_sliced_ingest_matches_unsliced():
    metadata, chunks = _encrypted_chunks(16)
    attachments = [encode_encrypted_chunk(chunk) for chunk in chunks]

    sliced_engine = ServerEngine()
    sliced_engine.create_stream(metadata)
    sliced = RequestDispatcher(sliced_engine, bulk_slice_chunks=4)
    response = sliced.dispatch(Request("insert_chunks", {}, list(attachments)))
    assert response.ok
    assert response.result == {"window_index": 0, "num_chunks": 16}

    whole_engine = ServerEngine()
    whole_engine.create_stream(metadata)
    whole = RequestDispatcher(whole_engine, bulk_slice_chunks=0)  # slicing off
    assert whole.dispatch(Request("insert_chunks", {}, list(attachments))).ok

    horizon = TimeRange(0, 16 * CHUNK_INTERVAL)
    assert [encode_encrypted_chunk(c) for c in sliced_engine.get_range("%s" % metadata.uuid, horizon)] == [
        encode_encrypted_chunk(c) for c in whole_engine.get_range("%s" % metadata.uuid, horizon)
    ]


def test_sliced_ingest_validates_each_slice():
    metadata, chunks = _encrypted_chunks(16)
    engine = ServerEngine()
    engine.create_stream(metadata)
    dispatcher = RequestDispatcher(engine, bulk_slice_chunks=4)
    # Drop window 4: the first slice (windows 0-3) is valid, the second
    # starts at window 5 and must fail validation — same outcome a client
    # splitting the batch itself would see.
    gapped = [encode_encrypted_chunk(c) for c in chunks[:4] + chunks[5:]]
    response = dispatcher.dispatch(Request("insert_chunks", {}, gapped))
    assert not response.ok
    assert response.error_type == "QueryError"
    applied = engine.get_range(metadata.uuid, TimeRange(0, 16 * CHUNK_INTERVAL))
    assert len(applied) == 4


# -- the storage tier ----------------------------------------------------------------


class _GatedStore(MemoryStore):
    def __init__(self) -> None:
        super().__init__()
        self.release = threading.Event()

    def multi_put(self, items):
        self.release.wait(10)
        return super().multi_put(list(items))


def test_storage_shed_maps_to_storage_error_after_retries():
    store = _GatedStore()
    with StorageNodeServer(store, max_workers=1, bulk_queue_limit=1) as node:
        host, port = node.address
        remote = RemoteKeyValueStore(host, port, timeout=5.0, overload_retries=0)
        try:
            background = [
                threading.Thread(target=remote.multi_put, args=([(b"k%d" % i, b"v")],))
                for i in range(2)
            ]
            for thread in background:
                thread.start()
            # One multi_put blocked in the handler, one filling the queue.
            _wait_until(
                lambda: node.scheduler_stats()["dispatched_bulk"] >= 1
                and node.scheduler_stats()["enqueued_bulk"] >= 2
            )
            with pytest.raises(StorageError, match="overloaded"):
                remote.multi_put([(b"shed", b"v")])
            store.release.set()
            for thread in background:
                thread.join(timeout=10)
            assert store.get(b"k0") == b"v" and store.get(b"k1") == b"v"
            assert store.get(b"shed") is None  # the shed write was never applied
        finally:
            store.release.set()
            remote.close()


# -- the router's concurrent cross-shard fan-out -------------------------------------


class _SlowGrantDispatcher(WireDispatcher):
    def __init__(self, delay: float) -> None:
        self._delay = delay

    def _op_put_grants(self, request: Request) -> Response:
        time.sleep(self._delay)
        return Response.success({"grant_ids": list(range(len(request.args["grants"])))})


def test_router_fans_out_cross_shard_batches_concurrently():
    delay = 0.4
    with TimeCryptTCPServer(dispatcher=_SlowGrantDispatcher(delay)) as shard_a:
        with TimeCryptTCPServer(dispatcher=_SlowGrantDispatcher(delay)) as shard_b:
            table = ShardRoutingTable(
                [("e1", *shard_a.address), ("e2", *shard_b.address)]
            )
            dispatcher = RouterDispatcher(RoutingTableRef(table))
            try:
                by_owner = {"e1": [], "e2": []}
                index = 0
                while min(len(uuids) for uuids in by_owner.values()) < 2:
                    uuid = f"stream-{index}"
                    index += 1
                    owner = table.owner_of(uuid)
                    if len(by_owner[owner]) < 2:
                        by_owner[owner].append(uuid)
                targets = by_owner["e1"] + by_owner["e2"]
                request = Request(
                    "put_grants",
                    {"grants": [{"uuid": uuid, "principal_id": "p"} for uuid in targets]},
                    [b"token-%d" % i for i in range(len(targets))],
                )
                begin = time.perf_counter()
                response = dispatcher.dispatch(request)
                elapsed = time.perf_counter() - begin
            finally:
                dispatcher.close()

    assert response.ok
    grant_ids = response.result["grant_ids"]
    assert len(grant_ids) == 4
    # Each shard numbered its own sub-batch 0..n-1; stitching preserves slots.
    assert grant_ids == [0, 1, 0, 1]
    # Both shards slept concurrently: a serial fan-out would take >= 2 * delay.
    assert elapsed < 2 * delay * 0.85
