"""Tests for the storage substrate: memory/disk stores, partitioning, replication."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import PartitionError
from repro.storage.cluster import StorageCluster
from repro.storage.disk import AppendLogStore
from repro.storage.memory import MemoryStore
from repro.storage.partitioner import ConsistentHashRing


class TestMemoryStore:
    def test_put_get_delete(self):
        store = MemoryStore()
        store.put(b"k", b"v")
        assert store.get(b"k") == b"v"
        assert store.delete(b"k") is True
        assert store.get(b"k") is None
        assert store.delete(b"k") is False

    def test_overwrite(self):
        store = MemoryStore()
        store.put(b"k", b"v1")
        store.put(b"k", b"v2")
        assert store.get(b"k") == b"v2"
        assert len(store) == 1

    def test_scan_prefix_ordered(self):
        store = MemoryStore()
        for key in (b"a/2", b"a/1", b"b/1"):
            store.put(key, key)
        assert [key for key, _ in store.scan_prefix(b"a/")] == [b"a/1", b"a/2"]

    def test_multi_get_and_put(self):
        store = MemoryStore()
        store.multi_put([(b"a", b"1"), (b"b", b"2")])
        assert store.multi_get([b"a", b"b", b"c"]) == {b"a": b"1", b"b": b"2", b"c": None}

    def test_contains_count_and_size(self):
        store = MemoryStore()
        store.put(b"pre/a", b"xx")
        store.put(b"pre/b", b"yy")
        assert store.contains(b"pre/a")
        assert store.count_prefix(b"pre/") == 2
        assert store.size_bytes() == len(b"pre/a") + len(b"pre/b") + 4

    def test_stats_counters(self):
        store = MemoryStore()
        store.put(b"k", b"v")
        store.get(b"k")
        store.delete(b"k")
        assert store.stats.puts == 1 and store.stats.gets == 1 and store.stats.deletes == 1

    @given(st.dictionaries(st.binary(min_size=1, max_size=16), st.binary(max_size=64), max_size=40))
    @settings(max_examples=30, deadline=None)
    def test_store_behaves_like_dict(self, mapping):
        store = MemoryStore()
        for key, value in mapping.items():
            store.put(key, value)
        for key, value in mapping.items():
            assert store.get(key) == value
        assert len(store) == len(mapping)


class TestAppendLogStore:
    def test_put_get_roundtrip(self, tmp_path):
        with AppendLogStore(tmp_path / "store.log") as store:
            store.put(b"key", b"value")
            assert store.get(b"key") == b"value"

    def test_persistence_across_reopen(self, tmp_path):
        path = tmp_path / "store.log"
        with AppendLogStore(path) as store:
            store.put(b"a", b"1")
            store.put(b"b", b"2")
            store.delete(b"a")
        with AppendLogStore(path) as reopened:
            assert reopened.get(b"a") is None
            assert reopened.get(b"b") == b"2"
            assert len(reopened) == 1

    def test_latest_version_wins(self, tmp_path):
        path = tmp_path / "store.log"
        with AppendLogStore(path) as store:
            store.put(b"k", b"old")
            store.put(b"k", b"new")
            assert store.get(b"k") == b"new"
        with AppendLogStore(path) as reopened:
            assert reopened.get(b"k") == b"new"

    def test_scan_prefix(self, tmp_path):
        with AppendLogStore(tmp_path / "store.log") as store:
            store.put(b"x/1", b"a")
            store.put(b"y/1", b"b")
            store.put(b"x/2", b"c")
            assert [key for key, _ in store.scan_prefix(b"x/")] == [b"x/1", b"x/2"]

    def test_compaction_preserves_data_and_shrinks_log(self, tmp_path):
        path = tmp_path / "store.log"
        store = AppendLogStore(path)
        for round_index in range(5):
            for key_index in range(20):
                store.put(f"k{key_index}".encode(), f"value-{round_index}".encode())
        size_before = path.stat().st_size
        store.compact()
        assert path.stat().st_size < size_before
        for key_index in range(20):
            assert store.get(f"k{key_index}".encode()) == b"value-4"
        store.close()

    def test_torn_final_record_is_truncated(self, tmp_path):
        path = tmp_path / "store.log"
        with AppendLogStore(path) as store:
            store.put(b"good", b"value")
        with open(path, "ab") as log:
            log.write(b"\x00\x00\x00\x04\x00\x00")  # half a record header + nothing
        with AppendLogStore(path) as reopened:
            assert reopened.get(b"good") == b"value"
            assert len(reopened) == 1

    def test_tombstone_then_reinsert(self, tmp_path):
        with AppendLogStore(tmp_path / "store.log") as store:
            store.put(b"k", b"v1")
            store.delete(b"k")
            store.put(b"k", b"v2")
            assert store.get(b"k") == b"v2"


class TestConsistentHashRing:
    def test_requires_nodes(self):
        ring = ConsistentHashRing()
        with pytest.raises(PartitionError):
            ring.primary(b"key")

    def test_duplicate_node_rejected(self):
        ring = ConsistentHashRing(["n1"])
        with pytest.raises(ValueError):
            ring.add_node("n1")

    def test_replicas_are_distinct(self):
        ring = ConsistentHashRing(["n1", "n2", "n3"])
        replicas = ring.replicas(b"some-key", 3)
        assert len(replicas) == 3
        assert len(set(replicas)) == 3

    def test_replication_capped_by_cluster_size(self):
        ring = ConsistentHashRing(["n1", "n2"])
        assert len(ring.replicas(b"k", 5)) == 2

    def test_placement_is_deterministic(self):
        ring = ConsistentHashRing(["n1", "n2", "n3"])
        assert ring.primary(b"abc") == ring.primary(b"abc")

    def test_remove_node_moves_only_its_keys(self):
        ring = ConsistentHashRing(["n1", "n2", "n3"], virtual_tokens=128)
        keys = [f"key-{i}".encode() for i in range(500)]
        before = {key: ring.primary(key) for key in keys}
        ring.remove_node("n2")
        after = {key: ring.primary(key) for key in keys}
        moved = [key for key in keys if before[key] != after[key]]
        # Only keys previously owned by n2 may move.
        assert all(before[key] == "n2" for key in moved)
        assert all(after[key] != "n2" for key in keys)

    def test_remove_unknown_node(self):
        ring = ConsistentHashRing(["n1"])
        with pytest.raises(ValueError):
            ring.remove_node("n9")

    def test_ownership_roughly_balanced(self):
        ring = ConsistentHashRing(["n1", "n2", "n3", "n4"], virtual_tokens=256)
        fractions = ring.ownership_fractions(sample_keys=2000)
        assert all(0.10 < fraction < 0.45 for fraction in fractions.values())


class TestStorageCluster:
    def test_basic_roundtrip(self):
        cluster = StorageCluster(num_nodes=3, replication_factor=2)
        cluster.put(b"k", b"v")
        assert cluster.get(b"k") == b"v"
        assert cluster.delete(b"k") is True
        assert cluster.get(b"k") is None

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            StorageCluster(num_nodes=0)
        with pytest.raises(ValueError):
            StorageCluster(num_nodes=2, replication_factor=0)

    def test_data_is_replicated(self):
        cluster = StorageCluster(num_nodes=3, replication_factor=2)
        cluster.put(b"key", b"value")
        holders = [
            name for name in cluster.node_names if cluster.node_store(name).get(b"key") is not None
        ]
        assert len(holders) == 2

    def test_survives_single_node_failure(self):
        cluster = StorageCluster(num_nodes=3, replication_factor=2)
        for i in range(50):
            cluster.put(f"k{i}".encode(), f"v{i}".encode())
        cluster.mark_down(cluster.node_names[0])
        for i in range(50):
            assert cluster.get(f"k{i}".encode()) == f"v{i}".encode()

    def test_all_replicas_down_raises(self):
        cluster = StorageCluster(num_nodes=2, replication_factor=2)
        cluster.put(b"k", b"v")
        cluster.mark_down("node-0")
        cluster.mark_down("node-1")
        with pytest.raises(PartitionError):
            cluster.get(b"k")
        cluster.mark_up("node-0")
        assert cluster.get(b"k") == b"v"

    def test_scan_prefix_deduplicates_replicas(self):
        cluster = StorageCluster(num_nodes=3, replication_factor=3)
        cluster.put(b"p/1", b"a")
        cluster.put(b"p/2", b"b")
        items = list(cluster.scan_prefix(b"p/"))
        assert [key for key, _ in items] == [b"p/1", b"p/2"]

    def test_logical_vs_physical_size(self):
        cluster = StorageCluster(num_nodes=3, replication_factor=3)
        cluster.put(b"k", b"vvvv")
        assert cluster.physical_size_bytes() == 3 * cluster.size_bytes()

    def test_repair_node(self):
        cluster = StorageCluster(num_nodes=3, replication_factor=2)
        cluster.mark_down("node-1")
        for i in range(30):
            cluster.put(f"k{i}".encode(), b"v")
        cluster.mark_up("node-1")
        repaired = cluster.repair_node("node-1")
        assert repaired >= 0
        # After repair every key it should own is present locally.
        missing = [
            key
            for key, _ in cluster.scan_prefix(b"")
            if "node-1" in cluster.healthy_replicas(key)
            and cluster.node_store("node-1").get(key) is None
        ]
        assert missing == []

    def test_cluster_with_disk_backend(self, tmp_path):
        cluster = StorageCluster(
            num_nodes=2,
            replication_factor=2,
            store_factory=lambda name: AppendLogStore(tmp_path / f"{name}.log"),
        )
        cluster.put(b"k", b"v")
        assert cluster.get(b"k") == b"v"
        cluster.close()
