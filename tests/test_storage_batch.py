"""Batch round-trip pipeline tests: multi_put/multi_get/multi_delete end to end.

Covers the three layers of the batch boundary:

* backends — ``MemoryStore`` single-lock bulk ops, ``AppendLogStore``
  one-append-per-batch, ``StorageCluster`` partitioner-aware scatter-gather
  with per-node failure isolation;
* index — ``append_many`` flushing one coalesced ``multi_put`` per batch and
  range queries fetching the node cover with one ``multi_get``;
* server — ``insert_chunks`` landing payloads + index nodes in a single
  write set, with stored bytes identical to the scalar per-chunk path.
"""

from __future__ import annotations

import pytest

from repro import ServerEngine, StreamConfig, TimeCrypt
from repro.exceptions import PartitionError
from repro.storage.cluster import StorageCluster
from repro.storage.disk import AppendLogStore
from repro.storage.kv import KeyValueStore
from repro.storage.memory import MemoryStore
from repro.util.timeutil import TimeRange


class MinimalStore(KeyValueStore):
    """A backend implementing only the scalar ops (no batch overrides)."""

    def __init__(self):
        self.data = {}

    def get(self, key):
        return self.data.get(key)

    def put(self, key, value):
        self.data[key] = value

    def delete(self, key):
        return self.data.pop(key, None) is not None

    def scan_prefix(self, prefix):
        return iter(
            (key, value) for key, value in sorted(self.data.items()) if key.startswith(prefix)
        )


class FlakyStore(MemoryStore):
    """A node-local store that can be told to fail its next batch calls."""

    def __init__(self) -> None:
        super().__init__()
        self.failing = False

    def _maybe_fail(self) -> None:
        if self.failing:
            raise IOError("injected node failure")

    def multi_put(self, items):
        self._maybe_fail()
        return super().multi_put(items)

    def multi_get(self, keys):
        self._maybe_fail()
        return super().multi_get(keys)

    def multi_delete(self, keys):
        self._maybe_fail()
        return super().multi_delete(keys)


# ---------------------------------------------------------------------------
# Backend primitives
# ---------------------------------------------------------------------------


class TestMemoryStoreBatch:
    def test_round_trip_counters(self):
        store = MemoryStore()
        store.multi_put([(b"a", b"1"), (b"b", b"2"), (b"c", b"3")])
        store.multi_get([b"a", b"b", b"missing"])
        store.multi_delete([b"a", b"missing"])
        assert store.stats.multi_puts == 1 and store.stats.multi_put_keys == 3
        assert store.stats.multi_gets == 1 and store.stats.multi_get_keys == 3
        assert store.stats.multi_deletes == 1 and store.stats.multi_delete_keys == 2
        # 3 round trips total for 8 keys moved; scalar counters untouched.
        assert store.stats.round_trips == 3
        assert store.stats.puts == store.stats.gets == store.stats.deletes == 0

    def test_multi_delete_returns_existing_subset(self):
        store = MemoryStore()
        store.multi_put([(b"a", b"1"), (b"b", b"2")])
        assert store.multi_delete([b"a", b"x"]) == {b"a"}
        assert store.get(b"a") is None and store.get(b"b") == b"2"


class TestAppendLogStoreBatch:
    def test_multi_put_is_one_append(self, tmp_path):
        with AppendLogStore(tmp_path / "s.log") as store:
            store.multi_put([(f"k{i}".encode(), f"v{i}".encode()) for i in range(50)])
            assert store.stats.multi_puts == 1
            assert store.stats.puts == 0
            for i in range(50):
                assert store.get(f"k{i}".encode()) == f"v{i}".encode()

    def test_multi_put_persists_across_reopen(self, tmp_path):
        path = tmp_path / "s.log"
        with AppendLogStore(path) as store:
            store.multi_put([(b"a", b"1"), (b"b", b"2")])
        with AppendLogStore(path) as reopened:
            assert reopened.multi_get([b"a", b"b"]) == {b"a": b"1", b"b": b"2"}

    def test_multi_get_one_pass_with_missing_keys(self, tmp_path):
        with AppendLogStore(tmp_path / "s.log") as store:
            store.multi_put([(b"a", b"1"), (b"b", b"2"), (b"c", b"3")])
            result = store.multi_get([b"c", b"missing", b"a"])
            assert result == {b"c": b"3", b"missing": None, b"a": b"1"}
            assert store.stats.multi_gets == 1 and store.stats.gets == 0

    def test_multi_get_returns_latest_version(self, tmp_path):
        with AppendLogStore(tmp_path / "s.log") as store:
            store.put(b"k", b"old")
            store.multi_put([(b"k", b"new"), (b"other", b"x")])
            assert store.multi_get([b"k"]) == {b"k": b"new"}

    def test_multi_delete_batched_tombstones(self, tmp_path):
        path = tmp_path / "s.log"
        with AppendLogStore(path) as store:
            store.multi_put([(b"a", b"1"), (b"b", b"2"), (b"c", b"3")])
            assert store.multi_delete([b"a", b"c", b"nope"]) == {b"a", b"c"}
            assert store.stats.multi_deletes == 1 and store.stats.deletes == 0
        with AppendLogStore(path) as reopened:
            assert len(reopened) == 1 and reopened.get(b"b") == b"2"

    def test_sync_mode_batches_fsync(self, tmp_path):
        with AppendLogStore(tmp_path / "s.log", sync=True) as store:
            store.multi_put([(b"a", b"1"), (b"b", b"2")])
            assert store.multi_get([b"a", b"b"]) == {b"a": b"1", b"b": b"2"}


class TestClusterScatterGather:
    def test_multi_put_one_round_trip_per_node(self):
        cluster = StorageCluster(num_nodes=3, replication_factor=2)
        items = [(f"k{i}".encode(), f"v{i}".encode()) for i in range(64)]
        cluster.multi_put(items)
        for name in cluster.node_names:
            stats = cluster.node_store(name).stats
            assert stats.multi_puts <= 1 and stats.puts == 0
        # Every key readable, and replicated RF times.
        assert cluster.multi_get([key for key, _ in items]) == dict(items)
        total_copies = sum(len(cluster.node_store(name)) for name in cluster.node_names)
        assert total_copies == 2 * len(items)

    def test_multi_get_one_round_trip_per_node(self):
        cluster = StorageCluster(num_nodes=3, replication_factor=2)
        items = [(f"k{i}".encode(), f"v{i}".encode()) for i in range(64)]
        cluster.multi_put(items)
        for name in cluster.node_names:
            cluster.node_store(name).stats.reset()
        result = cluster.multi_get([key for key, _ in items] + [b"absent"])
        assert result[b"absent"] is None
        assert all(result[key] == value for key, value in items)
        for name in cluster.node_names:
            stats = cluster.node_store(name).stats
            # One primary-read round trip, plus at most one fallback pass for
            # the absent key's replica checks.
            assert stats.multi_gets <= 2 and stats.gets == 0

    def test_multi_put_with_downed_node_routes_to_survivors(self):
        cluster = StorageCluster(num_nodes=3, replication_factor=2)
        cluster.mark_down("node-1")
        items = [(f"k{i}".encode(), f"v{i}".encode()) for i in range(40)]
        cluster.multi_put(items)
        assert len(cluster.node_store("node-1")) == 0
        for key, value in items:
            assert cluster.get(key) == value

    def test_repair_backfills_after_batched_outage_writes(self):
        cluster = StorageCluster(num_nodes=3, replication_factor=2)
        cluster.mark_down("node-1")
        items = [(f"k{i}".encode(), f"v{i}".encode()) for i in range(40)]
        cluster.multi_put(items)
        cluster.mark_up("node-1")
        cluster.repair_node("node-1")
        missing = [
            key
            for key, _ in cluster.scan_prefix(b"")
            if "node-1" in cluster.healthy_replicas(key)
            and cluster.node_store("node-1").get(key) is None
        ]
        assert missing == []

    def test_multi_get_partial_outage_returns_every_reachable_key(self):
        cluster = StorageCluster(num_nodes=3, replication_factor=2)
        items = [(f"k{i}".encode(), f"v{i}".encode()) for i in range(60)]
        cluster.multi_put(items)
        cluster.mark_down("node-0")
        # rf=2 over 3 nodes: every key still has one healthy replica.
        result = cluster.multi_get([key for key, _ in items])
        assert result == dict(items)

    def test_multi_put_marks_failing_node_down_and_reroutes(self):
        stores = {}

        def factory(name):
            stores[name] = FlakyStore()
            return stores[name]

        cluster = StorageCluster(num_nodes=3, replication_factor=2, store_factory=factory)
        stores["node-2"].failing = True
        items = [(f"k{i}".encode(), f"v{i}".encode()) for i in range(40)]
        cluster.multi_put(items)
        # The failure fed the mark-down machinery ...
        assert cluster.healthy_replicas(b"k0") != [] and "node-2" not in {
            node for key, _ in items for node in cluster.healthy_replicas(key)
        }
        # ... and every key is still readable from the survivors.
        for key, value in items:
            assert cluster.get(key) == value
        # Recovery path: node comes back and mark_up replays the hints the
        # failed writes parked on the survivors — repair has nothing left.
        stores["node-2"].failing = False
        assert cluster.mark_up("node-2") > 0
        assert cluster.repair_node("node-2") == 0

    def test_multi_get_marks_failing_node_down_and_retries(self):
        stores = {}

        def factory(name):
            stores[name] = FlakyStore()
            return stores[name]

        cluster = StorageCluster(num_nodes=3, replication_factor=2, store_factory=factory)
        items = [(f"k{i}".encode(), f"v{i}".encode()) for i in range(40)]
        cluster.multi_put(items)
        stores["node-0"].failing = True
        result = cluster.multi_get([key for key, _ in items])
        assert result == dict(items)

    def test_multi_put_no_replica_raises(self):
        cluster = StorageCluster(num_nodes=2, replication_factor=2)
        cluster.mark_down("node-0")
        cluster.mark_down("node-1")
        with pytest.raises(PartitionError):
            cluster.multi_put([(b"k", b"v")])

    def test_multi_get_no_replica_raises(self):
        cluster = StorageCluster(num_nodes=2, replication_factor=2)
        cluster.multi_put([(b"k", b"v")])
        cluster.mark_down("node-0")
        cluster.mark_down("node-1")
        with pytest.raises(PartitionError):
            cluster.multi_get([b"k"])

    def test_multi_delete_node_failure_propagates(self):
        """A failed tombstone must surface — repair cannot heal a missed delete."""
        stores = {}

        def factory(name):
            stores[name] = FlakyStore()
            return stores[name]

        cluster = StorageCluster(num_nodes=3, replication_factor=2, store_factory=factory)
        items = [(f"k{i}".encode(), b"v") for i in range(30)]
        cluster.multi_put(items)
        stores["node-1"].failing = True
        with pytest.raises(IOError):
            cluster.multi_delete([key for key, _ in items])
        # The caller knows the delete did not fully land, and the node was
        # not silently marked down while holding resurrectable data.
        assert any("node-1" in cluster.healthy_replicas(key) for key, _ in items)

    def test_multi_delete_scatter_gather(self):
        cluster = StorageCluster(num_nodes=3, replication_factor=2)
        items = [(f"k{i}".encode(), f"v{i}".encode()) for i in range(30)]
        cluster.multi_put(items)
        existed = cluster.multi_delete([key for key, _ in items[:10]] + [b"ghost"])
        assert existed == {key for key, _ in items[:10]}
        for name in cluster.node_names:
            assert cluster.node_store(name).stats.deletes == 0
        assert cluster.multi_get([key for key, _ in items[:10]]) == {
            key: None for key, _ in items[:10]
        }


# ---------------------------------------------------------------------------
# Index + engine integration
# ---------------------------------------------------------------------------


CHUNK_INTERVAL = 1_000
POINTS_PER_CHUNK = 4


def _records(num_chunks: int):
    step = CHUNK_INTERVAL // POINTS_PER_CHUNK
    return [
        (t, float((t // step) % 50)) for t in range(0, num_chunks * CHUNK_INTERVAL, step)
    ]


def _encrypted_chunks(num_chunks: int):
    """Encrypt a stream once; returns (metadata, the encrypted chunks)."""
    server = ServerEngine()
    owner = TimeCrypt(server=server, owner_id="tester")
    config = StreamConfig(chunk_interval=CHUNK_INTERVAL, index_fanout=4)
    uuid = owner.create_stream(metric="batch", config=config)
    owner.insert_records(uuid, _records(num_chunks))
    owner.flush(uuid)
    chunks = [server.get_chunk(uuid, index) for index in range(num_chunks)]
    assert all(chunk is not None for chunk in chunks)
    return server.stream_metadata(uuid), chunks


class TestEngineBatchRoundTrips:
    def test_insert_chunks_is_one_multi_put(self):
        metadata, chunks = _encrypted_chunks(12)
        store = MemoryStore()
        server = ServerEngine(store=store)
        server.create_stream(metadata)
        store.stats.reset()
        server.insert_chunks(chunks)
        # Payloads + index nodes + meta record: one coalesced write set.
        assert store.stats.multi_puts == 1
        assert store.stats.puts == 0
        # The write set carried every chunk payload and at least one node per chunk.
        assert store.stats.multi_put_keys > len(chunks)

    def test_batch_matches_scalar_store_bytes_exactly(self):
        metadata, chunks = _encrypted_chunks(12)
        scalar_store, batch_store = MemoryStore(), MemoryStore()
        scalar_server = ServerEngine(store=scalar_store)
        batch_server = ServerEngine(store=batch_store)
        scalar_server.create_stream(metadata)
        batch_server.create_stream(metadata)
        for chunk in chunks:
            scalar_server.insert_chunk(chunk)
        batch_server.insert_chunks(chunks)
        assert dict(scalar_store.scan_prefix(b"")) == dict(batch_store.scan_prefix(b""))
        # And both engines answer the same encrypted aggregate.
        uuid = metadata.uuid
        scalar_result = scalar_server.stat_range_windows(uuid, 0, len(chunks))
        batch_result = batch_server.stat_range_windows(uuid, 0, len(chunks))
        assert scalar_result.cells == batch_result.cells

    def test_cold_query_is_one_multi_get(self):
        metadata, chunks = _encrypted_chunks(16)
        store = MemoryStore()
        server = ServerEngine(store=store)
        server.create_stream(metadata)
        server.insert_chunks(chunks)
        # Fresh engine over the same store: the node cache starts empty.
        cold = ServerEngine(store=store)
        store.stats.reset()
        result = cold.stat_range_windows(metadata.uuid, 1, len(chunks))
        assert result.num_index_nodes > 1
        assert store.stats.multi_gets == 1
        assert store.stats.gets == 0
        assert cold.query_stats.index_store_round_trips == 1
        # Warm cache: the same query needs zero backend round trips.
        store.stats.reset()
        cold.stat_range_windows(metadata.uuid, 1, len(chunks))
        assert store.stats.multi_gets == 0 and store.stats.gets == 0
        assert cold.query_stats.index_store_round_trips == 1  # unchanged

    def test_cluster_query_one_multi_get_per_node(self):
        metadata, chunks = _encrypted_chunks(16)
        cluster = StorageCluster(num_nodes=3, replication_factor=2)
        server = ServerEngine(store=cluster)
        server.create_stream(metadata)
        server.insert_chunks(chunks)
        cold = ServerEngine(store=cluster)
        for name in cluster.node_names:
            cluster.node_store(name).stats.reset()
        result = cold.stat_range_windows(metadata.uuid, 1, len(chunks))
        assert result.num_index_nodes > 1
        for name in cluster.node_names:
            assert cluster.node_store(name).stats.multi_gets <= 1

    def test_get_range_batches_chunk_reads(self):
        metadata, chunks = _encrypted_chunks(10)
        store = MemoryStore()
        server = ServerEngine(store=store)
        server.create_stream(metadata)
        server.insert_chunks(chunks)
        store.stats.reset()
        fetched = server.get_range(metadata.uuid, TimeRange(0, 10 * CHUNK_INTERVAL))
        assert len(fetched) == 10
        assert store.stats.multi_gets == 1 and store.stats.gets == 0
        assert fetched == chunks

    def test_delete_range_batches_deletes(self):
        metadata, chunks = _encrypted_chunks(10)
        store = MemoryStore()
        server = ServerEngine(store=store)
        server.create_stream(metadata)
        server.insert_chunks(chunks)
        store.stats.reset()
        deleted = server.delete_range(metadata.uuid, TimeRange(0, 5 * CHUNK_INTERVAL))
        assert deleted == 5
        assert store.stats.multi_deletes == 1 and store.stats.deletes == 0

    def test_rollup_prune_batches_deletes(self):
        metadata, chunks = _encrypted_chunks(16)
        store = MemoryStore()
        server = ServerEngine(store=store)
        server.create_stream(metadata)
        server.insert_chunks(chunks)
        store.stats.reset()
        deleted = server.rollup_stream(metadata.uuid, resolution_windows=4)
        assert deleted > 0
        # One multi_delete for payloads, one for the pruned index levels.
        assert store.stats.multi_deletes == 2 and store.stats.deletes == 0
        # Coarse aggregates survive the rollup.
        result = server.stat_range_windows(metadata.uuid, 0, 16)
        assert result.num_index_nodes >= 1

    def test_engine_over_appendlog_end_to_end(self, tmp_path):
        metadata, chunks = _encrypted_chunks(8)
        with AppendLogStore(tmp_path / "engine.log") as store:
            server = ServerEngine(store=store)
            server.create_stream(metadata)
            server.insert_chunks(chunks)
            assert store.stats.multi_puts >= 1 and store.stats.puts <= 1
            result = server.stat_range_windows(metadata.uuid, 0, len(chunks))
            assert result.num_index_nodes >= 1

    def test_delete_stream_uses_batched_delete(self):
        metadata, chunks = _encrypted_chunks(8)
        store = MemoryStore()
        server = ServerEngine(store=store)
        server.create_stream(metadata)
        server.insert_chunks(chunks)
        store.stats.reset()
        server.delete_stream(metadata.uuid)
        # Bulk erase is two prefix deletes (chunks, index) plus the scalar
        # metadata delete — constant round trips, never one per key.
        assert store.stats.multi_deletes == 2 and store.stats.deletes == 1
        assert len(store) == 0


class TestBatchFailureAtomicity:
    def test_failed_flush_leaves_index_retryable(self):
        """A rejected multi_put must not advance the index head or poison the cache."""
        from repro.exceptions import StorageError

        class RefusingStore(MemoryStore):
            def __init__(self):
                super().__init__()
                self.refusing = False

            def multi_put(self, items):
                if self.refusing:
                    raise StorageError("injected backend outage")
                return super().multi_put(items)

        metadata, chunks = _encrypted_chunks(8)
        store = RefusingStore()
        server = ServerEngine(store=store)
        server.create_stream(metadata)
        server.insert_chunks(chunks[:4])
        store.refusing = True
        with pytest.raises(StorageError):
            server.insert_chunks(chunks[4:])
        assert server.stream_head(metadata.uuid) == 4
        # The store heals; retrying the identical batch succeeds.
        store.refusing = False
        server.insert_chunks(chunks[4:])
        assert server.stream_head(metadata.uuid) == 8
        # Nothing stale was cached during the failed attempt: a cold engine
        # over the same store answers identically.
        cold = ServerEngine(store=store)
        assert (
            cold.stat_range_windows(metadata.uuid, 0, 8).cells
            == server.stat_range_windows(metadata.uuid, 0, 8).cells
        )

    def test_cluster_propagates_deterministic_errors_without_markdown(self, tmp_path):
        """A data bug is not a node outage: no mark-down, error reaches the caller."""
        cluster = StorageCluster(
            num_nodes=3,
            replication_factor=2,
            store_factory=lambda name: AppendLogStore(tmp_path / f"{name}.log"),
        )
        with pytest.raises(TypeError):
            cluster.multi_put([(b"k", None)])  # len(None) inside the node store
        # No node was blamed for the caller's bad value.
        cluster.multi_put([(b"k", b"v")])
        assert len(cluster.healthy_replicas(b"k")) == 2
        assert cluster.get(b"k") == b"v"
        cluster.close()


class TestScalarInterfaceUnchanged(object):
    """The KeyValueStore default loops still serve backends without batching."""

    def test_default_multi_ops_fall_back_to_scalar(self):
        store = MinimalStore()
        store.multi_put([(b"a", b"1"), (b"b", b"2")])
        assert store.multi_get([b"a", b"b", b"c"]) == {b"a": b"1", b"b": b"2", b"c": None}
        assert store.multi_delete([b"a", b"c"]) == {b"a"}

    def test_engine_works_over_minimal_backend(self):
        metadata, chunks = _encrypted_chunks(4)
        server = ServerEngine(store=MinimalStore())
        server.create_stream(metadata)
        server.insert_chunks(chunks)
        result = server.stat_range_windows(metadata.uuid, 0, len(chunks))
        assert result.num_index_nodes >= 1
