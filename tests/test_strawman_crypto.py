"""Tests for the strawman ciphers: Paillier, EC-ElGamal, ECC, hybrid ECIES, ABE."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import ecc, hybrid
from repro.exceptions import DecryptionError
from repro.crypto.abe import ABEAuthority, ABECostModel, ABEPrincipal, wrap_chunk_key
from repro.crypto.ecelgamal import ECElGamal
from repro.crypto.paillier import generate_keypair, generate_prime, _is_probable_prime
from repro.exceptions import AccessDeniedError, CryptoError, DecryptionError


@pytest.fixture(scope="module")
def paillier_keys():
    return generate_keypair(key_bits=512)


@pytest.fixture(scope="module")
def elgamal():
    return ECElGamal.generate(max_plaintext=1 << 20)


class TestPaillier:
    def test_prime_generation(self):
        prime = generate_prime(64)
        assert prime.bit_length() == 64
        assert _is_probable_prime(prime)

    def test_known_composites_rejected(self):
        assert not _is_probable_prime(561)  # Carmichael number
        assert not _is_probable_prime(1)
        assert _is_probable_prime(2)

    def test_small_modulus_rejected(self):
        with pytest.raises(CryptoError):
            generate_keypair(key_bits=32)

    def test_encrypt_decrypt_roundtrip(self, paillier_keys):
        public, private = paillier_keys
        for value in (0, 1, 42, 2**32, 2**63):
            assert private.decrypt(public.encrypt(value)) == value

    def test_homomorphic_addition(self, paillier_keys):
        public, private = paillier_keys
        total = public.add(public.encrypt(1000), public.encrypt(234))
        assert private.decrypt(total) == 1234

    def test_add_plain_and_multiply_plain(self, paillier_keys):
        public, private = paillier_keys
        ciphertext = public.encrypt(10)
        assert private.decrypt(public.add_plain(ciphertext, 5)) == 15
        assert private.decrypt(public.multiply_plain(ciphertext, 7)) == 70

    def test_signed_decryption(self, paillier_keys):
        public, private = paillier_keys
        negative = public.n - 5  # encodes -5
        assert private.decrypt_signed(public.encrypt(negative)) == -5

    def test_randomised_encryption(self, paillier_keys):
        public, _private = paillier_keys
        assert public.encrypt(7) != public.encrypt(7)

    def test_ciphertext_expansion_reported(self, paillier_keys):
        public, _private = paillier_keys
        assert public.ciphertext_bytes == 128  # (2 * 512 bits) / 8

    def test_out_of_range_ciphertext_rejected(self, paillier_keys):
        _public, private = paillier_keys
        with pytest.raises(DecryptionError):
            private.decrypt(-1)

    @given(a=st.integers(0, 2**40), b=st.integers(0, 2**40))
    @settings(max_examples=10, deadline=None)
    def test_homomorphism_property(self, paillier_keys, a, b):
        public, private = paillier_keys
        assert private.decrypt(public.add(public.encrypt(a), public.encrypt(b))) == a + b


class TestECC:
    def test_generator_on_curve(self):
        assert ecc.is_on_curve(ecc.GENERATOR)

    def test_order_times_generator_is_infinity(self):
        assert ecc.scalar_mult(ecc.N).is_infinity

    def test_addition_consistency(self):
        assert ecc.point_add(ecc.scalar_mult(3), ecc.scalar_mult(4)) == ecc.scalar_mult(7)

    def test_subtraction_and_negation(self):
        p5 = ecc.scalar_mult(5)
        assert ecc.point_sub(p5, ecc.scalar_mult(2)) == ecc.scalar_mult(3)
        assert ecc.point_add(p5, ecc.point_neg(p5)).is_infinity

    def test_infinity_is_identity(self):
        p = ecc.scalar_mult(9)
        assert ecc.point_add(p, ecc.INFINITY) == p
        assert ecc.point_add(ecc.INFINITY, p) == p

    def test_point_encoding_roundtrip(self):
        p = ecc.scalar_mult(12345)
        assert ecc.Point.decode(p.encode()) == p
        assert ecc.Point.decode(ecc.INFINITY.encode()).is_infinity

    def test_invalid_encodings_rejected(self):
        with pytest.raises(CryptoError):
            ecc.Point.decode(b"\x04" + b"\x01" * 64)
        with pytest.raises(CryptoError):
            ecc.Point.decode(b"\x05" + b"\x00" * 64)

    def test_keypair_consistency(self):
        private, public = ecc.generate_keypair()
        assert ecc.is_on_curve(public)
        assert ecc.scalar_mult(private) == public

    @given(st.integers(1, 2**64))
    @settings(max_examples=10, deadline=None)
    def test_scalar_mult_distributes(self, k):
        assert ecc.point_add(ecc.scalar_mult(k), ecc.GENERATOR) == ecc.scalar_mult(k + 1)


class TestECElGamal:
    def test_roundtrip(self, elgamal):
        for value in (0, 1, 7, 5000, 99999):
            assert elgamal.decrypt(elgamal.encrypt(value)) == value

    def test_homomorphic_addition(self, elgamal):
        total = ECElGamal.add(elgamal.encrypt(300), elgamal.encrypt(45))
        assert elgamal.decrypt(total) == 345

    def test_negative_plaintext_rejected(self, elgamal):
        with pytest.raises(ValueError):
            elgamal.encrypt(-1)

    def test_public_instance_cannot_decrypt(self, elgamal):
        public_only = elgamal.public_instance()
        ciphertext = public_only.encrypt(5)
        with pytest.raises(DecryptionError):
            public_only.decrypt(ciphertext)
        assert elgamal.decrypt(ciphertext) == 5

    def test_aggregate_beyond_bound_rejected(self):
        scheme = ECElGamal.generate(max_plaintext=100)
        big = scheme.encrypt(99)
        total = ECElGamal.add(big, scheme.encrypt(50))
        with pytest.raises(DecryptionError):
            scheme.decrypt(total)

    def test_ciphertext_size(self, elgamal):
        assert elgamal.encrypt(1).size_bytes == 130

    @given(a=st.integers(0, 500), b=st.integers(0, 500))
    @settings(max_examples=10, deadline=None)
    def test_homomorphism_property(self, elgamal, a, b):
        assert elgamal.decrypt(ECElGamal.add(elgamal.encrypt(a), elgamal.encrypt(b))) == a + b


class TestHybridEncryption:
    def test_roundtrip(self):
        private, public = hybrid.generate_keypair()
        blob = hybrid.encrypt(public, b"token payload", b"context")
        assert hybrid.decrypt(private, blob, b"context") == b"token payload"

    def test_wrong_recipient_fails(self):
        private_a, public_a = hybrid.generate_keypair()
        private_b, _public_b = hybrid.generate_keypair()
        blob = hybrid.encrypt(public_a, b"secret")
        with pytest.raises(DecryptionError):
            hybrid.decrypt(private_b, blob)

    def test_wrong_context_fails(self):
        private, public = hybrid.generate_keypair()
        blob = hybrid.encrypt(public, b"secret", b"ctx-a")
        with pytest.raises(DecryptionError):
            hybrid.decrypt(private, blob, b"ctx-b")

    def test_truncated_envelope_rejected(self):
        private, public = hybrid.generate_keypair()
        with pytest.raises(DecryptionError):
            hybrid.decrypt(private, b"\x00")

    def test_envelope_encoding_roundtrip(self):
        envelope = hybrid.HybridCiphertext(ephemeral_public=b"\x04" + b"\x01" * 64, sealed=b"abc")
        decoded = hybrid.HybridCiphertext.decode(envelope.encode())
        assert decoded == envelope


class TestABE:
    def test_attribute_key_covers_range(self):
        authority = ABEAuthority(master_secret=b"m" * 16)
        key = authority.issue_key("doc", 10, 20)
        assert key.covers(10) and key.covers(19)
        assert not key.covers(20) and not key.covers(9)

    def test_empty_range_rejected(self):
        authority = ABEAuthority(master_secret=b"m" * 16)
        with pytest.raises(ValueError):
            authority.issue_key("doc", 5, 5)

    def test_unwrap_inside_range(self):
        authority = ABEAuthority(master_secret=b"m" * 16)
        principal = ABEPrincipal("doc")
        principal.add_key(authority.issue_key("doc", 0, 100))
        wrappings = wrap_chunk_key(authority, 42, [(0, 100)])
        kek = principal.unwrap(wrappings, 42)
        from repro.crypto.prf import kdf

        assert kek == kdf(authority.master_secret, "abe-chunk:42")

    def test_unwrap_outside_range_denied(self):
        authority = ABEAuthority(master_secret=b"m" * 16)
        principal = ABEPrincipal("doc")
        principal.add_key(authority.issue_key("doc", 0, 10))
        wrappings = wrap_chunk_key(authority, 42, [(0, 10), (0, 100)])
        with pytest.raises(AccessDeniedError):
            principal.unwrap(wrappings, 42)

    def test_key_for_other_principal_rejected(self):
        authority = ABEAuthority(master_secret=b"m" * 16)
        principal = ABEPrincipal("doc")
        with pytest.raises(AccessDeniedError):
            principal.add_key(authority.issue_key("nurse", 0, 10))

    def test_cost_model_accumulates(self):
        model = ABECostModel()
        model.charge_encrypt(1)
        model.charge_decrypt(2)
        assert model.encrypt_operations == 1
        assert model.decrypt_operations == 1
        assert model.total_modelled_seconds == pytest.approx(0.053 + 2 * 0.013)
