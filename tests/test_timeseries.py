"""Tests for the time-series data model: points, digests, chunks, streams."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ChunkError, ConfigurationError, OutOfOrderError, QueryError
from repro.timeseries.chunk import Chunk, ChunkBuilder, chunks_from_points
from repro.timeseries.digest import Digest, DigestConfig, HistogramConfig, sum_digests
from repro.timeseries.point import DataPoint, decode_value, encode_value, make_points, validate_sorted
from repro.timeseries.stream import StreamConfig, StreamMetadata
from repro.util.timeutil import TimeRange


class TestDataPoint:
    def test_requires_integer_value(self):
        with pytest.raises(TypeError):
            DataPoint(timestamp=0, value=1.5)

    def test_requires_integer_timestamp(self):
        with pytest.raises(TypeError):
            DataPoint(timestamp="0", value=1)

    def test_ordering_by_timestamp(self):
        assert DataPoint(1, 100) < DataPoint(2, 0)

    def test_fixed_point_encoding(self):
        assert encode_value(36.62, scale=100) == 3662
        assert decode_value(3662, scale=100) == 36.62
        assert encode_value(5, scale=1) == 5

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            encode_value(1.0, scale=0)
        with pytest.raises(ValueError):
            decode_value(1, scale=0)

    def test_make_points(self):
        points = make_points([0, 10], [1.5, 2.5], scale=10)
        assert points == [DataPoint(0, 15), DataPoint(10, 25)]

    def test_validate_sorted(self):
        ordered = [DataPoint(0, 1), DataPoint(5, 2)]
        assert validate_sorted(ordered) == ordered
        with pytest.raises(ValueError):
            validate_sorted([DataPoint(5, 1), DataPoint(0, 2)])

    @given(st.floats(min_value=-1e6, max_value=1e6), st.integers(1, 10**6))
    def test_fixed_point_roundtrip_error_bounded(self, value, scale):
        encoded = encode_value(value, scale)
        assert abs(decode_value(encoded, scale) - value) <= 0.5 / scale + 1e-9


class TestHistogramConfig:
    def test_bin_assignment(self):
        histogram = HistogramConfig(boundaries=(10, 20, 30))
        assert histogram.num_bins == 4
        assert histogram.bin_of(5) == 0
        assert histogram.bin_of(10) == 1
        assert histogram.bin_of(29) == 2
        assert histogram.bin_of(30) == 3
        assert histogram.bin_of(1000) == 3

    def test_bin_range(self):
        histogram = HistogramConfig(boundaries=(10, 20))
        assert histogram.bin_range(0) == (None, 10)
        assert histogram.bin_range(1) == (10, 20)
        assert histogram.bin_range(2) == (20, None)
        with pytest.raises(QueryError):
            histogram.bin_range(3)

    def test_unsorted_boundaries_rejected(self):
        with pytest.raises(ConfigurationError):
            HistogramConfig(boundaries=(20, 10))

    def test_duplicate_boundaries_rejected(self):
        with pytest.raises(ConfigurationError):
            HistogramConfig(boundaries=(10, 10))

    def test_empty_histogram(self):
        histogram = HistogramConfig()
        assert histogram.num_bins == 0
        with pytest.raises(QueryError):
            histogram.bin_of(5)


class TestDigestConfig:
    def test_width_and_names(self):
        config = DigestConfig(histogram=HistogramConfig(boundaries=(10, 20)))
        assert config.width == 6
        assert config.component_names == ("sum", "count", "sum_sq", "bin_0", "bin_1", "bin_2")

    def test_supported_operators(self):
        full = DigestConfig(histogram=HistogramConfig(boundaries=(10,)))
        assert set(full.supported_operators()) >= {"sum", "count", "mean", "var", "stdev", "min", "max"}
        minimal = DigestConfig(include_sum_of_squares=False)
        assert "var" not in minimal.supported_operators()
        assert not minimal.supports("histogram")


class TestDigest:
    CONFIG = DigestConfig(histogram=HistogramConfig(boundaries=(10, 20, 30)))

    def _points(self, values):
        return [DataPoint(timestamp=i, value=v) for i, v in enumerate(values)]

    def test_of_points_statistics(self):
        values = [5, 15, 25, 35, 15]
        digest = Digest.of_points(self.CONFIG, self._points(values))
        assert digest.sum == sum(values)
        assert digest.count == len(values)
        assert digest.sum_of_squares == sum(v * v for v in values)
        assert digest.histogram_counts == [1, 2, 1, 1]

    def test_mean_variance_stdev(self):
        values = [10, 20, 30, 40]
        digest = Digest.of_points(self.CONFIG, self._points(values))
        assert digest.mean() == 25
        assert digest.variance() == pytest.approx(125.0)
        assert digest.stdev() == pytest.approx(125.0 ** 0.5)

    def test_min_max_bins(self):
        digest = Digest.of_points(self.CONFIG, self._points([15, 25]))
        assert digest.min_bin() == 1
        assert digest.max_bin() == 2
        assert digest.evaluate("min") == (10, 20)
        assert digest.evaluate("max") == (20, 30)

    def test_empty_digest_errors(self):
        digest = Digest.zero(self.CONFIG)
        with pytest.raises(QueryError):
            digest.mean()
        with pytest.raises(QueryError):
            digest.min_bin()

    def test_addition(self):
        a = Digest.of_points(self.CONFIG, self._points([5, 15]))
        b = Digest.of_points(self.CONFIG, self._points([25]))
        combined = a + b
        assert combined.sum == 45
        assert combined.count == 3

    def test_addition_requires_same_config(self):
        a = Digest.zero(self.CONFIG)
        b = Digest.zero(DigestConfig())
        with pytest.raises(ConfigurationError):
            _ = a + b

    def test_wrong_width_rejected(self):
        with pytest.raises(ConfigurationError):
            Digest(config=self.CONFIG, values=[0, 0])

    def test_unsupported_operator(self):
        digest = Digest.zero(DigestConfig(include_sum_of_squares=False))
        with pytest.raises(QueryError):
            digest.evaluate("var")

    def test_sum_digests(self):
        digests = [Digest.of_points(self.CONFIG, self._points([v])) for v in (1, 2, 3)]
        assert sum_digests(digests).sum == 6
        with pytest.raises(QueryError):
            sum_digests([])

    @given(st.lists(st.integers(0, 100), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_digest_matches_direct_computation(self, values):
        digest = Digest.of_points(self.CONFIG, self._points(values))
        assert digest.sum == sum(values)
        assert digest.count == len(values)
        assert digest.mean() == pytest.approx(sum(values) / len(values))
        mean = sum(values) / len(values)
        assert digest.variance() == pytest.approx(
            sum(v * v for v in values) / len(values) - mean * mean, abs=1e-6
        )

    @given(
        st.lists(st.integers(0, 100), min_size=1, max_size=30),
        st.lists(st.integers(0, 100), min_size=1, max_size=30),
    )
    @settings(max_examples=50, deadline=None)
    def test_digest_addition_is_concatenation(self, first, second):
        combined = Digest.of_points(self.CONFIG, self._points(first)) + Digest.of_points(
            self.CONFIG, self._points(second)
        )
        direct = Digest.of_points(self.CONFIG, self._points(first + second))
        assert combined.values == direct.values


class TestStreamConfig:
    def test_defaults_valid(self):
        config = StreamConfig()
        assert config.max_chunks == 2**30

    def test_invalid_values_rejected(self):
        with pytest.raises(ConfigurationError):
            StreamConfig(chunk_interval=0)
        with pytest.raises(ConfigurationError):
            StreamConfig(value_scale=0)
        with pytest.raises(ConfigurationError):
            StreamConfig(key_tree_height=0)
        with pytest.raises(ConfigurationError):
            StreamConfig(index_fanout=1)

    def test_window_mapping(self):
        config = StreamConfig(chunk_interval=10, start_time=100)
        assert config.window_of(100) == 0
        assert config.window_of(109) == 0
        assert config.window_of(110) == 1
        assert config.window_start(2) == 120
        with pytest.raises(ConfigurationError):
            config.window_of(99)

    def test_metadata_new_generates_uuid(self):
        a = StreamMetadata.new(owner_id="o")
        b = StreamMetadata.new(owner_id="o")
        assert a.uuid != b.uuid


class TestChunking:
    CONFIG = StreamConfig(chunk_interval=100, digest=DigestConfig())

    def test_chunk_rejects_out_of_window_points(self):
        with pytest.raises(ChunkError):
            Chunk.of_points(0, TimeRange(0, 100), [DataPoint(150, 1)], DigestConfig())

    def test_builder_emits_on_window_crossing(self):
        builder = ChunkBuilder(config=self.CONFIG)
        assert builder.append(DataPoint(10, 1)) == []
        assert builder.append(DataPoint(50, 2)) == []
        completed = builder.append(DataPoint(120, 3))
        assert len(completed) == 1
        assert completed[0].window_index == 0
        assert completed[0].num_points == 2

    def test_builder_flush(self):
        builder = ChunkBuilder(config=self.CONFIG)
        builder.append(DataPoint(10, 1))
        chunks = builder.flush()
        assert len(chunks) == 1 and chunks[0].num_points == 1
        assert builder.flush() == []

    def test_builder_emits_empty_gap_windows(self):
        builder = ChunkBuilder(config=self.CONFIG)
        builder.append(DataPoint(10, 1))
        completed = builder.append(DataPoint(350, 2))
        # windows 0 (with data), 1 and 2 (empty) are emitted; window 3 stays open.
        assert [chunk.window_index for chunk in completed] == [0, 1, 2]
        assert [chunk.num_points for chunk in completed] == [1, 0, 0]

    def test_builder_can_skip_empty_windows(self):
        builder = ChunkBuilder(config=self.CONFIG, emit_empty_chunks=False)
        builder.append(DataPoint(10, 1))
        completed = builder.append(DataPoint(350, 2))
        assert [chunk.window_index for chunk in completed] == [0]

    def test_out_of_order_rejected(self):
        builder = ChunkBuilder(config=self.CONFIG)
        builder.append(DataPoint(50, 1))
        with pytest.raises(OutOfOrderError):
            builder.append(DataPoint(40, 2))

    def test_chunks_from_points_covers_everything(self):
        points = [DataPoint(t, t) for t in range(0, 1000, 30)]
        chunks = chunks_from_points(self.CONFIG, points)
        assert sum(chunk.num_points for chunk in chunks) == len(points)
        # Window indices are consecutive from 0.
        assert [chunk.window_index for chunk in chunks] == list(range(len(chunks)))

    def test_chunk_digest_matches_points(self):
        points = [DataPoint(t, t % 7) for t in range(0, 100, 10)]
        chunks = chunks_from_points(self.CONFIG, points)
        assert chunks[0].digest.sum == sum(p.value for p in points)

    @given(st.lists(st.integers(0, 10_000), min_size=1, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_builder_preserves_all_points(self, deltas):
        timestamps = []
        current = 0
        for delta in deltas:
            current += delta
            timestamps.append(current)
        points = [DataPoint(t, i) for i, t in enumerate(timestamps)]
        chunks = chunks_from_points(self.CONFIG, points)
        recovered = [point for chunk in chunks for point in chunk.points]
        assert recovered == points
