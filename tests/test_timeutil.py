"""Tests for time-interval arithmetic."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.timeutil import (
    TimeRange,
    align_down,
    align_up,
    is_aligned,
    iter_windows,
    range_to_windows,
    window_index,
    window_range,
)


class TestTimeRange:
    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            TimeRange(10, 5)

    def test_empty_range(self):
        r = TimeRange(5, 5)
        assert r.is_empty()
        assert r.duration == 0
        assert not r.contains(5)

    def test_contains_is_half_open(self):
        r = TimeRange(0, 10)
        assert r.contains(0)
        assert r.contains(9)
        assert not r.contains(10)

    def test_contains_range(self):
        assert TimeRange(0, 100).contains_range(TimeRange(10, 50))
        assert not TimeRange(0, 100).contains_range(TimeRange(10, 150))

    def test_overlaps(self):
        assert TimeRange(0, 10).overlaps(TimeRange(5, 15))
        assert not TimeRange(0, 10).overlaps(TimeRange(10, 20))

    def test_intersect(self):
        assert TimeRange(0, 10).intersect(TimeRange(5, 15)) == TimeRange(5, 10)
        assert TimeRange(0, 5).intersect(TimeRange(10, 20)).is_empty()

    def test_union_span(self):
        assert TimeRange(0, 5).union_span(TimeRange(10, 20)) == TimeRange(0, 20)

    def test_shift(self):
        assert TimeRange(0, 10).shift(5) == TimeRange(5, 15)

    def test_ordering(self):
        assert TimeRange(0, 10) < TimeRange(5, 6)


class TestAlignment:
    def test_align_down_basic(self):
        assert align_down(25, 10) == 20
        assert align_down(20, 10) == 20

    def test_align_up_basic(self):
        assert align_up(25, 10) == 30
        assert align_up(20, 10) == 20

    def test_alignment_with_epoch(self):
        assert align_down(25, 10, epoch=3) == 23
        assert align_up(25, 10, epoch=3) == 33

    def test_zero_delta_rejected(self):
        with pytest.raises(ValueError):
            align_down(5, 0)
        with pytest.raises(ValueError):
            align_up(5, 0)

    def test_is_aligned(self):
        assert is_aligned(30, 10)
        assert not is_aligned(31, 10)

    @given(st.integers(min_value=0, max_value=10**12), st.integers(min_value=1, max_value=10**6))
    def test_align_down_up_bracket(self, ts, delta):
        assert align_down(ts, delta) <= ts <= align_up(ts, delta)
        assert align_up(ts, delta) - align_down(ts, delta) in (0, delta)


class TestWindows:
    def test_window_index(self):
        assert window_index(0, 10) == 0
        assert window_index(9, 10) == 0
        assert window_index(10, 10) == 1

    def test_window_index_before_epoch(self):
        with pytest.raises(ValueError):
            window_index(5, 10, epoch=100)

    def test_window_range(self):
        assert window_range(3, 10) == TimeRange(30, 40)
        assert window_range(3, 10, epoch=5) == TimeRange(35, 45)

    def test_range_to_windows(self):
        assert range_to_windows(TimeRange(0, 30), 10) == (0, 3)
        assert range_to_windows(TimeRange(5, 31), 10) == (0, 4)

    def test_iter_windows_covers_range(self):
        windows = list(iter_windows(TimeRange(5, 35), 10))
        assert windows[0] == TimeRange(0, 10)
        assert windows[-1] == TimeRange(30, 40)
        assert len(windows) == 4

    @given(
        st.integers(min_value=0, max_value=10**9),
        st.integers(min_value=1, max_value=10**9),
        st.integers(min_value=1, max_value=10**4),
    )
    def test_every_timestamp_covered_by_exactly_one_window(self, start, duration, delta):
        time_range = TimeRange(start, start + duration)
        lo, hi = range_to_windows(time_range, delta)
        # The first and last timestamps fall into the computed window interval.
        assert lo <= window_index(time_range.start, delta) < hi
        assert lo <= window_index(time_range.end - 1, delta) < hi
