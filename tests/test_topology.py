"""Elastic cluster membership and hinted handoff.

Covers the live-topology half of the Cassandra stand-in:

* the inclusive ring-placement seek (a virtual token whose position equals
  the key's hash owns the key — deterministic collision regression);
* ``add_node`` / ``decommission_node`` streaming only the moved ranges in
  bounded batches, with reads served correctly *mid*-handoff, the moved-key
  fraction ≈ 1/N on an add, and byte-identity of a mirrored engine workload
  across a full add → decommission cycle (in-process and over real-socket
  remote nodes);
* hinted handoff — a write that misses a downed replica parks a hint on a
  surviving replica (reserved ``hint/`` keyspace, invisible to cluster
  scans) and ``mark_up`` replays it so ``repair_node`` heals 0 keys;
* the fan-out pool growing with live membership.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import pytest

from repro import Principal, ServerEngine, StreamConfig, TimeCrypt
from repro.access.keystore import TokenStore
from repro.exceptions import ClusterMembershipError
from repro.storage.cluster import HINT_PREFIX, StorageCluster, _hint_prefix_for
from repro.storage.disk import AppendLogStore
from repro.storage.memory import MemoryStore
from repro.storage.node import StorageNodeServer
from repro.storage.partitioner import ConsistentHashRing
from repro.storage.remote import RemoteKeyValueStore

import repro.storage.partitioner as partitioner_module


# ---------------------------------------------------------------------------
# Ring placement (inclusive seek) and rebalance math
# ---------------------------------------------------------------------------


class TestRingPlacement:
    def test_exact_token_collision_owned_inclusively(self, monkeypatch):
        """A key whose hash equals a token's position belongs to that token.

        128-bit collisions never happen by accident, so the hash is replaced
        with a deterministic map: node A's single token sits at 100, node
        B's at 200, and the probe key hashes to exactly 200.  The
        Dynamo/Cassandra convention (first token with position >= hash) puts
        the key on B; the old exclusive ``bisect_right`` seek skipped B's
        token and wrapped the key around to A.
        """
        positions = {b"A#0": 100, b"B#0": 200, b"key-at-200": 200, b"key-at-100": 100}
        monkeypatch.setattr(
            partitioner_module, "_hash_to_ring", lambda data: positions.get(data, 150)
        )
        ring = ConsistentHashRing(["A", "B"], virtual_tokens=1)
        assert ring.primary(b"key-at-200") == "B"
        assert ring.primary(b"key-at-100") == "A"
        # Between tokens (150) the clockwise successor still owns the key.
        assert ring.primary(b"anything-else") == "B"
        # Replica walks starting at a collision include the colliding node
        # first, then its distinct successor.
        assert ring.replicas(b"key-at-200", 2) == ["B", "A"]

    def test_copy_is_independent(self):
        ring = ConsistentHashRing(["a", "b"], virtual_tokens=8)
        clone = ring.copy()
        clone.add_node("c")
        assert ring.nodes == ["a", "b"]
        assert clone.nodes == ["a", "b", "c"]
        key = b"some-key"
        assert ring.primary(key) in ("a", "b")

    def test_ownership_rebalances_toward_equal_fractions(self):
        ring = ConsistentHashRing([f"node-{i}" for i in range(3)], virtual_tokens=64)
        ring.add_node("node-3")
        fractions = ring.ownership_fractions(sample_keys=2048)
        assert abs(sum(fractions.values()) - 1.0) < 1e-9
        # 64 virtual tokens keep every node within a loose band of 1/4.
        for node, fraction in fractions.items():
            assert 0.10 <= fraction <= 0.45, (node, fraction)


# ---------------------------------------------------------------------------
# Elastic membership, in process
# ---------------------------------------------------------------------------


def _fill(cluster: StorageCluster, count: int, prefix: str = "k") -> List[Tuple[bytes, bytes]]:
    items = [(f"{prefix}/{index:05d}".encode(), bytes([index % 251]) * 8) for index in range(count)]
    cluster.multi_put(items)
    return items


class TestElasticMembership:
    def test_add_node_moves_about_one_over_n(self):
        cluster = StorageCluster(num_nodes=3, replication_factor=1)
        items = _fill(cluster, 600)
        name = cluster.add_node()
        assert name == "node-3"
        stats = cluster.last_rebalance
        assert stats["action"] == "add" and stats["node"] == name
        # RF=1: the moved keys are exactly the new node's ownership share.
        fraction = stats["moved_keys"] / len(items)
        assert 0.10 <= fraction <= 0.45, stats
        assert stats["copied_keys"] == stats["moved_keys"]
        assert stats["handoff_batches"] >= 1
        # Every key still reads back, and the new node serves its share.
        fetched = cluster.multi_get([key for key, _ in items])
        assert all(fetched[key] == value for key, value in items)
        assert len(cluster.node_store(name)) == stats["moved_keys"]
        cluster.close()

    def test_add_node_then_decommission_round_trips_data(self):
        cluster = StorageCluster(num_nodes=3, replication_factor=2)
        items = _fill(cluster, 400)
        before = list(cluster.scan_prefix(b""))
        added = cluster.add_node()
        mid = list(cluster.scan_prefix(b""))
        assert mid == before
        stats = cluster.decommission_node(added)
        assert stats["action"] == "decommission"
        assert added not in cluster.node_names
        after = list(cluster.scan_prefix(b""))
        assert after == before
        fetched = cluster.multi_get([key for key, _ in items])
        assert all(fetched[key] == value for key, value in items)
        cluster.close()

    def test_decommission_original_node_hands_ranges_to_survivors(self):
        cluster = StorageCluster(num_nodes=4, replication_factor=2)
        items = _fill(cluster, 400)
        cluster.decommission_node("node-1")
        assert cluster.node_names == ["node-0", "node-2", "node-3"]
        fetched = cluster.multi_get([key for key, _ in items])
        assert all(fetched[key] == value for key, value in items)
        # Every key is fully re-replicated on the survivors.
        for key, _value in items:
            replicas = cluster.healthy_replicas(key)
            assert len(replicas) == 2 and "node-1" not in replicas
            for name in replicas:
                assert cluster.node_store(name).get(key) is not None
        cluster.close()

    def test_decommission_with_rf1_moves_every_key_off_the_leaver(self):
        cluster = StorageCluster(num_nodes=3, replication_factor=1)
        items = _fill(cluster, 300)
        held = len(cluster.node_store("node-2"))
        assert held > 0
        stats = cluster.decommission_node("node-2")
        assert stats["copied_keys"] == held  # sole copies all streamed out
        fetched = cluster.multi_get([key for key, _ in items])
        assert all(fetched[key] == value for key, value in items)
        cluster.close()

    def test_reads_correct_mid_handoff(self):
        """Probe reads *during* the handoff batches see every key."""
        items_holder: Dict[bytes, bytes] = {}
        probes: List[int] = []

        class ProbingCluster(StorageCluster):
            def _handoff_batch(self, batch, old_ring, old_rf):
                # Mid-rebalance: the batch's keys are not yet on their new
                # owners, yet cluster reads must already resolve them via
                # the old-ring fallback.
                sample = list(batch)[:5]
                fetched = self.multi_get(sample)
                for key in sample:
                    assert fetched[key] == items_holder[key], key
                probes.append(len(sample))
                return super()._handoff_batch(batch, old_ring, old_rf)

        cluster = ProbingCluster(num_nodes=3, replication_factor=1)
        items_holder.update(_fill(cluster, 300))
        cluster.add_node(handoff_batch_size=32)
        assert len(probes) >= 2  # the handoff really ran in several batches
        cluster.close()

    def test_writes_mid_handoff_not_clobbered_by_the_copy(self):
        """A fresh write landing mid-handoff survives the backfill copy."""
        overwritten: Dict[bytes, bytes] = {}

        class WritingCluster(StorageCluster):
            def _handoff_batch(self, batch, old_ring, old_rf):
                for key in list(batch)[:3]:
                    new_value = b"fresh/" + key
                    self.multi_put([(key, new_value)])
                    overwritten[key] = new_value
                return super()._handoff_batch(batch, old_ring, old_rf)

        cluster = WritingCluster(num_nodes=3, replication_factor=2)
        _fill(cluster, 200)
        cluster.add_node(handoff_batch_size=32)
        assert overwritten
        fetched = cluster.multi_get(list(overwritten))
        for key, value in overwritten.items():
            assert fetched[key] == value
        cluster.close()

    def test_post_handoff_overwrite_not_shadowed_by_mid_handoff_write(self):
        """A mid-handoff write re-lands on a cleaned old owner (union
        routing); the post-handoff sweep must re-clean it, or the next
        overwrite leaves that copy stale and the scan tie-break surfaces
        the old value."""
        mid_written: List[bytes] = []

        class WritingCluster(StorageCluster):
            def _handoff_batch(self, batch, old_ring, old_rf):
                result = super()._handoff_batch(batch, old_ring, old_rf)
                # After this batch's cleanup already ran: write its keys
                # again — the union walk re-creates copies on the losers.
                for key in list(batch)[:3]:
                    self.multi_put([(key, b"mid/" + key)])
                    mid_written.append(key)
                return result

        cluster = WritingCluster(num_nodes=3, replication_factor=2)
        _fill(cluster, 200)
        cluster.add_node(handoff_batch_size=32)
        assert mid_written
        final = {key: b"final/" + key for key in mid_written}
        cluster.multi_put(list(final.items()))
        merged = dict(cluster.scan_prefix(b""))
        fetched = cluster.multi_get(list(final))
        for key, value in final.items():
            assert merged[key] == value, key
            assert fetched[key] == value, key
        cluster.close()

    def test_delete_after_membership_change_not_resurrected_by_replay(self):
        """Hints must follow (or die with) their key's replica walk: a hint
        parked before an add_node would otherwise dodge the delete's
        tombstones and resurrect the key on mark_up."""
        cluster = StorageCluster(num_nodes=3, replication_factor=2)
        cluster.mark_down("node-0")
        items = _fill(cluster, 120)
        hinted = [key for key, _ in items if "node-0" in cluster._replica_walk(key)]
        assert hinted
        cluster.add_node()  # shifts replica walks while hints are parked
        deleted = hinted[:20]
        cluster.multi_delete(deleted)
        cluster.mark_up("node-0")
        fetched = cluster.multi_get(deleted)
        for key in deleted:
            assert fetched[key] is None, key
            assert cluster.node_store("node-0").get(key) is None, key
        # Surviving (undeleted) hinted keys still healed normally.
        assert cluster.repair_node("node-0") == 0
        cluster.close()

    def test_membership_validation(self):
        cluster = StorageCluster(num_nodes=2, replication_factor=2)
        with pytest.raises(ClusterMembershipError):
            cluster.add_node("node-0")  # duplicate
        with pytest.raises(ClusterMembershipError):
            cluster.add_node("bad/name")
        with pytest.raises(ClusterMembershipError):
            cluster.decommission_node("node-9")
        with pytest.raises(ValueError):
            cluster.add_node("fresh", handoff_batch_size=0)
        cluster.decommission_node("node-1")
        with pytest.raises(ClusterMembershipError):
            cluster.decommission_node("node-0")  # last node must stay
        cluster.close()

    def test_add_node_adopts_a_caller_store(self):
        cluster = StorageCluster(num_nodes=2, replication_factor=2)
        _fill(cluster, 100)
        adopted = MemoryStore()
        name = cluster.add_node(adopted)
        assert cluster.node_store(name) is adopted
        assert len(adopted) == cluster.last_rebalance["copied_keys"] > 0
        cluster.close()

    def test_add_node_raises_effective_rf_back_to_requested(self):
        cluster = StorageCluster(num_nodes=1, replication_factor=2)
        assert cluster.replication_factor == 1
        items = _fill(cluster, 120)
        cluster.add_node()
        assert cluster.replication_factor == 2
        # The handoff re-replicated the whole keyspace onto the new node.
        for key, value in items:
            holders = [
                name
                for name in cluster.node_names
                if cluster.node_store(name).get(key) is not None
            ]
            assert len(holders) == 2, key
        cluster.close()

    def test_fanout_pool_grows_with_membership(self):
        cluster = StorageCluster(num_nodes=3, replication_factor=2, max_fanout_workers=8)
        _fill(cluster, 50)
        assert cluster._executor_workers == 3  # live membership, not the cap
        for _ in range(5):
            cluster.add_node()
        cluster.multi_put([(b"wide/1", b"v")])
        cluster.multi_get([key for key, _ in _fill(cluster, 50, prefix="wide")])
        assert len(cluster.node_names) == 8
        assert cluster._executor_workers == 8  # a 3→8 cluster fans out 8 wide
        cluster.close()


# ---------------------------------------------------------------------------
# Hinted handoff
# ---------------------------------------------------------------------------


def _hints_for(cluster: StorageCluster, target: str) -> Dict[bytes, bytes]:
    parked: Dict[bytes, bytes] = {}
    prefix = _hint_prefix_for(target)
    for name in cluster.node_names:
        if name == target:
            continue
        parked.update(dict(cluster.node_store(name).scan_prefix(prefix)))
    return parked


class TestHintedHandoff:
    def test_write_during_outage_parks_hints_on_survivors(self):
        cluster = StorageCluster(num_nodes=3, replication_factor=2)
        cluster.mark_down("node-1")
        items = _fill(cluster, 80)
        missed = [
            key for key, _ in items if "node-1" in cluster._replica_walk(key)
        ]
        parked = _hints_for(cluster, "node-1")
        assert len(parked) == len(missed) > 0
        # Hints never land on the downed target itself.
        assert all(key.startswith(HINT_PREFIX) for key in parked)
        assert len(cluster.node_store("node-1")) == 0
        cluster.close()

    def test_mark_up_replays_and_repair_heals_zero(self):
        cluster = StorageCluster(num_nodes=3, replication_factor=2)
        _fill(cluster, 60, prefix="pre")
        cluster.mark_down("node-2")
        during = _fill(cluster, 60, prefix="during")
        replayed = cluster.mark_up("node-2")
        assert replayed > 0
        # The acceptance claim: hints healed everything, repair finds nothing.
        assert cluster.repair_node("node-2") == 0
        for key, value in during:
            if "node-2" in cluster.healthy_replicas(key):
                assert cluster.node_store("node-2").get(key) == value
        # Consumed hints are deleted everywhere.
        assert _hints_for(cluster, "node-2") == {}
        cluster.close()

    def test_mid_batch_failure_also_parks_hints(self):
        from test_storage_batch import FlakyStore

        stores: Dict[str, FlakyStore] = {}

        def factory(name: str) -> FlakyStore:
            stores[name] = FlakyStore()
            return stores[name]

        cluster = StorageCluster(num_nodes=3, replication_factor=2, store_factory=factory)
        stores["node-0"].failing = True
        _fill(cluster, 60)
        assert "node-0" in cluster._down
        assert _hints_for(cluster, "node-0")
        stores["node-0"].failing = False
        assert cluster.mark_up("node-0") > 0
        assert cluster.repair_node("node-0") == 0
        cluster.close()

    def test_hints_invisible_to_cluster_scans_and_sizes(self):
        cluster = StorageCluster(num_nodes=3, replication_factor=2)
        items = _fill(cluster, 40)
        baseline_size = cluster.size_bytes()
        cluster.mark_down("node-1")
        more = _fill(cluster, 40, prefix="outage")
        # Hints exist physically ...
        assert _hints_for(cluster, "node-1")
        # ... but cluster-level scans, counts and sizes never surface them.
        merged = dict(cluster.scan_prefix(b""))
        assert set(merged) == {key for key, _ in items + more}
        assert cluster.count_prefix(b"hint/") == 0
        assert cluster.size_bytes() == baseline_size + sum(
            len(key) + len(value) for key, value in more
        )
        cluster.close()

    def test_reserved_prefix_rejected_for_user_writes(self):
        cluster = StorageCluster(num_nodes=2, replication_factor=2)
        with pytest.raises(ValueError, match="reserved"):
            cluster.put(b"hint/i-am-not-a-hint", b"v")
        with pytest.raises(ValueError, match="reserved"):
            cluster.multi_put([(b"ok", b"v"), (b"hint/x/y", b"v")])
        assert cluster.get(b"ok") is None  # the whole batch was rejected
        cluster.close()

    def test_delete_during_outage_drops_parked_hint(self):
        cluster = StorageCluster(num_nodes=3, replication_factor=2)
        cluster.mark_down("node-1")
        items = _fill(cluster, 40)
        victim = next(
            key for key, _ in items if "node-1" in cluster._replica_walk(key)
        )
        assert cluster.delete(victim) is True
        # The tombstone also dropped the parked hint: replay cannot
        # resurrect the deleted key on the recovered node.
        cluster.mark_up("node-1")
        assert cluster.get(victim) is None
        assert cluster.node_store("node-1").get(victim) is None
        cluster.close()

    def test_disabled_hinted_handoff_keeps_repair_as_the_heal_path(self):
        cluster = StorageCluster(num_nodes=3, replication_factor=2, hinted_handoff=False)
        cluster.mark_down("node-2")
        _fill(cluster, 60)
        assert _hints_for(cluster, "node-2") == {}
        assert cluster.mark_up("node-2") == 0
        assert cluster.repair_node("node-2") > 0  # the backstop still works
        cluster.close()

    def test_decommission_reparks_hosted_hints_and_drops_targeted_ones(self):
        cluster = StorageCluster(num_nodes=4, replication_factor=2)
        _fill(cluster, 60)
        cluster.mark_down("node-1")
        during = _fill(cluster, 60, prefix="outage")
        hinted_before = _hints_for(cluster, "node-1")
        assert hinted_before
        # Decommission a *hint-hosting* survivor: its parked hints must be
        # re-parked on the remaining nodes, not lost with it.
        host = next(
            name
            for name in cluster.node_names
            if name != "node-1" and dict(cluster.node_store(name).scan_prefix(HINT_PREFIX))
        )
        cluster.decommission_node(host)
        assert len(_hints_for(cluster, "node-1")) == len(hinted_before)
        assert cluster.mark_up("node-1") == len(hinted_before)
        # The replay applied every parked hint; repair may still backfill
        # keys whose range shifted *onto* node-1 while it was down (the
        # decommission could not stream to a downed destination) — that is
        # exactly the backstop role repair keeps.
        cluster.repair_node("node-1")
        assert _hints_for(cluster, "node-1") == {}
        fetched = cluster.multi_get([key for key, _ in during])
        assert all(fetched[key] == value for key, value in during)
        # Decommission the *target* of hints instead: they become garbage
        # and are dropped cluster-wide.
        cluster.mark_down("node-2")
        _fill(cluster, 40, prefix="again")
        assert _hints_for(cluster, "node-2")
        cluster.decommission_node("node-2")
        for name in cluster.node_names:
            assert not dict(cluster.node_store(name).scan_prefix(_hint_prefix_for("node-2")))
        cluster.close()

    def test_hints_survive_restart_on_persistent_backend(self, tmp_path):
        def factory(name: str) -> AppendLogStore:
            return AppendLogStore(tmp_path / f"{name}.log")

        cluster = StorageCluster(num_nodes=3, replication_factor=2, store_factory=factory)
        cluster.mark_down("node-0")
        during = _fill(cluster, 50)
        cluster.close()  # every node process "stops"; hints are on disk

        reopened = StorageCluster(num_nodes=3, replication_factor=2, store_factory=factory)
        reopened.mark_down("node-0")  # still down across the restart
        assert reopened.mark_up("node-0") > 0  # hints replay from the log
        assert reopened.repair_node("node-0") == 0
        fetched = reopened.multi_get([key for key, _ in during])
        assert all(fetched[key] == value for key, value in during)
        reopened.close()


# ---------------------------------------------------------------------------
# Elasticity over real-socket remote nodes
# ---------------------------------------------------------------------------


class _ElasticHarness:
    """Storage-node TCP servers plus a cluster dialing them, growable."""

    def __init__(self, num_nodes: int = 3, replication_factor: int = 2) -> None:
        self.backing: Dict[str, MemoryStore] = {}
        self.servers: Dict[str, StorageNodeServer] = {}
        self.addresses: Dict[str, Tuple[str, int]] = {}
        for index in range(num_nodes):
            self._launch(f"node-{index}")
        self.cluster = StorageCluster(
            num_nodes=num_nodes,
            replication_factor=replication_factor,
            store_factory=lambda name: RemoteKeyValueStore(
                *self.addresses[name], timeout=5.0
            ),
        )

    def _launch(self, name: str) -> None:
        self.backing[name] = MemoryStore()
        server = StorageNodeServer(self.backing[name]).start()
        self.servers[name] = server
        self.addresses[name] = server.address

    def add_node(self, name: str, **kwargs) -> str:
        self._launch(name)
        return self.cluster.add_node(name, **kwargs)

    def decommission(self, name: str) -> None:
        self.cluster.decommission_node(name)
        self.servers.pop(name).stop()

    def kill(self, name: str) -> None:
        self.servers[name].stop()

    def restart(self, name: str) -> None:
        self.servers[name] = StorageNodeServer(
            self.backing[name], port=self.addresses[name][1]
        ).start()

    def close(self) -> None:
        self.cluster.close()
        for server in self.servers.values():
            server.stop()


@pytest.fixture()
def elastic():
    harness = _ElasticHarness()
    yield harness
    harness.close()


def _engine_workload(engine_a: ServerEngine, engine_b: ServerEngine, topology_hook) -> None:
    """Mirror one ingest/query/grant workload into both engines.

    ``topology_hook(phase)`` fires between ingest waves so membership
    changes interleave with live engine traffic on engine_a only.
    """
    from repro.util.timeutil import TimeRange

    owner = TimeCrypt(server=engine_a, owner_id="alice")
    config = StreamConfig(chunk_interval=1_000)
    uuid = owner.create_stream(metric="elastic", config=config, uuid="elastic-stream")
    engine_b.create_stream(owner._streams[uuid].metadata)
    writer = owner._streams[uuid].writer
    sink_a, batch_a = writer.sink, writer.batch_sink
    writer.sink = lambda chunk: (sink_a(chunk), engine_b.insert_chunk(chunk))[0]
    writer.batch_sink = lambda chunks: (batch_a(chunks), engine_b.insert_chunks(chunks))[0]

    owner.insert_records(uuid, [(t, float(t % 23)) for t in range(0, 8_000, 250)])
    owner.flush(uuid)
    topology_hook("after-first-wave")

    owner.insert_records(uuid, [(t, float(t % 23)) for t in range(8_000, 16_000, 250)])
    owner.flush(uuid)
    topology_hook("after-second-wave")

    bob = Principal.create("elastic-bob")
    owner.register_principal(bob)
    owner.grant_access(uuid, bob.principal_id, 0, 16_000)
    for sealed in engine_a.fetch_grants(uuid, bob.principal_id):
        engine_b.put_grant(uuid, bob.principal_id, sealed)

    for engine in (engine_a, engine_b):
        assert engine.stream_head(uuid) == 16
        engine.stat_range(uuid, TimeRange(0, 16_000))


class TestRemoteElasticity:
    def test_add_then_decommission_byte_identical_to_static_cluster(self, elastic):
        static = StorageCluster(num_nodes=3, replication_factor=2)
        engine_static = ServerEngine(store=static, token_store=TokenStore(static))
        engine_elastic = ServerEngine(
            store=elastic.cluster, token_store=TokenStore(elastic.cluster)
        )

        def topology_hook(phase: str) -> None:
            if phase == "after-first-wave":
                elastic.add_node("node-3", handoff_batch_size=64)
            elif phase == "after-second-wave":
                elastic.decommission("node-0")

        _engine_workload(engine_elastic, engine_static, topology_hook)
        assert elastic.cluster.node_names == ["node-1", "node-2", "node-3"]
        over_wire = list(elastic.cluster.scan_prefix(b""))
        local = list(static.scan_prefix(b""))
        assert local, "workload stored nothing"
        assert over_wire == local  # byte identity across the add/decommission cycle
        assert elastic.cluster.size_bytes() == static.size_bytes()
        static.close()

    def test_remote_add_node_moves_and_serves(self, elastic):
        items = _fill(elastic.cluster, 300)
        elastic.add_node("node-3")
        stats = elastic.cluster.last_rebalance
        assert stats["moved_keys"] > 0
        assert len(elastic.backing["node-3"]) == stats["copied_keys"] > 0
        fetched = elastic.cluster.multi_get([key for key, _ in items])
        assert all(fetched[key] == value for key, value in items)

    def test_remote_handoff_round_trips_bounded_per_batch(self, elastic):
        _fill(elastic.cluster, 400)
        elastic._launch("node-3")
        store = RemoteKeyValueStore(*elastic.addresses["node-3"], timeout=5.0)
        store.connect()
        store.wire_stats.reset()
        elastic.cluster.add_node("node-3", store=store, handoff_batch_size=64)
        stats = elastic.cluster.last_rebalance
        assert stats["handoff_batches"] >= 2
        # Per batch the destination sees one multi_get (what do you hold)
        # and one multi_put (the backfill) — the old owners absorb the value
        # reads — plus one scan page for the keyspace walk (the new node is
        # part of the merged scan, its keyspace is empty) and one for the
        # post-handoff hint-rebalance scan of its (empty) hint keyspace.
        assert store.wire_stats.round_trips <= 2 * stats["handoff_batches"] + 2

    def test_remote_hint_replay_over_sockets(self, elastic):
        _fill(elastic.cluster, 60, prefix="pre")
        elastic.kill("node-1")
        during = _fill(elastic.cluster, 60, prefix="during")
        assert "node-1" in elastic.cluster._down
        elastic.restart("node-1")
        assert elastic.cluster.mark_up("node-1") > 0
        assert elastic.cluster.repair_node("node-1") == 0
        fetched = elastic.cluster.multi_get([key for key, _ in during])
        assert all(fetched[key] == value for key, value in during)

    def test_decommission_while_one_node_down(self, elastic):
        items = _fill(elastic.cluster, 200)
        elastic.kill("node-2")
        # First write marks it down and parks hints; then node-0 leaves.
        more = _fill(elastic.cluster, 50, prefix="more")
        elastic.decommission("node-0")
        assert elastic.cluster.node_names == ["node-1", "node-2"]
        fetched = elastic.cluster.multi_get([key for key, _ in items + more])
        assert all(fetched[key] == value for key, value in items + more)
