"""Tests for the zero-copy wire memory path and negotiated frame compression.

Covers the segment-based encode path (byte identity with the legacy
join-everything encoding), vectored writes, the view-emitting frame
assembler and reader (frame-cap edges, v1/v2 interleave, buffer-reuse
safety for retained views), hostile varint hardening in the message codec,
the ``hello`` compression negotiation matrix, and the end-to-end retain
audit (stored attachments survive later traffic over the same buffers).
"""

from __future__ import annotations

import io
import socket
import threading

import pytest

from repro import ServerEngine, TimeCrypt
from repro.exceptions import ProtocolError
from repro.net.client import RemoteServerClient
from repro.net.framing import (
    MAX_FRAME_BYTES,
    FrameAssembler,
    encode_frame,
    encode_frame_segments_v2,
    encode_frame_v2,
    write_vectored,
)
from repro.net.messages import (
    Request,
    Response,
    compress_message,
    encode_message_segments,
    maybe_compress_segments,
    peek_operation,
    retain,
    _decode_message,
)
from repro.net.server import TimeCryptTCPServer
from repro.storage.memory import MemoryStore
from repro.storage.node import StorageNodeServer
from repro.storage.remote import RemoteKeyValueStore
from repro.util.encoding import encode_varint


class TestSegmentEncoding:
    def test_segments_join_is_byte_identical_to_legacy_encode(self):
        request = Request("insert_chunks", {"uuid": "s", "n": 3}, [b"a" * 100, b"", b"b" * 7])
        assert b"".join(request.encode_segments()) == request.encode()
        response = Response.success({"found": [0, 2]}, [b"x" * 64, b"y"])
        assert b"".join(response.encode_segments()) == response.encode()

    def test_attachments_pass_through_by_reference(self):
        big = bytes(1 << 20)
        segments = encode_message_segments({"op": "ping"}, [big, memoryview(big)])
        assert segments[1] is big
        assert segments[2].obj is big

    def test_frame_segments_match_legacy_frame(self):
        request = Request("put_grant", {"uuid": "s"}, [b"sealed-token" * 50])
        segments = encode_frame_segments_v2(7, request.encode_segments())
        assert b"".join(segments) == encode_frame_v2(7, request.encode())

    def test_frame_segments_enforce_cap_and_correlation_range(self):
        with pytest.raises(ProtocolError):
            encode_frame_segments_v2(1, [b"\x00" * (MAX_FRAME_BYTES + 1)])
        with pytest.raises(ProtocolError):
            encode_frame_segments_v2(1 << 64, [b""])
        # Exactly at the cap is legal.
        header, payload = encode_frame_segments_v2(1, [bytes(MAX_FRAME_BYTES)])
        assert len(payload) == MAX_FRAME_BYTES

    def test_write_vectored_output_matches_concatenation(self):
        segments = [b"h" * 10, bytes(range(256)) * 400, b"t" * 3, bytes(200_000)]
        sink = io.BytesIO()
        syscalls, total, coalesced = write_vectored(sink, segments)
        assert sink.getvalue() == b"".join(segments)
        assert total == sum(len(s) for s in segments)
        # The two small segments around the large ones coalesce.
        assert coalesced == 2

    def test_write_vectored_over_socketpair_resumes_partial_sends(self):
        left, right = socket.socketpair()
        try:
            segments = [b"S" * 100, bytes(3 << 20), b"E" * 9]
            expected = b"".join(segments)
            received = bytearray()

            def drain() -> None:
                while len(received) < len(expected):
                    chunk = right.recv(1 << 16)
                    if not chunk:
                        return
                    received.extend(chunk)

            reader = threading.Thread(target=drain)
            reader.start()
            write_vectored(left, segments)
            reader.join(timeout=30)
            assert bytes(received) == expected
        finally:
            left.close()
            right.close()


class TestViewAssembler:
    def test_v1_v2_interleave_yields_views(self):
        wire = (
            encode_frame_v2(3, b"alpha")
            + encode_frame(b"legacy")
            + encode_frame_v2(4, b"")
            + encode_frame(b"")
            + encode_frame_v2(5, b"omega" * 1000)
        )
        assembler = FrameAssembler(views=True)
        frames = []
        for start in range(0, len(wire), 7):
            frames.extend(assembler.feed(wire[start : start + 7]))
        assert [(f.version, f.correlation_id) for f in frames] == [
            (2, 3),
            (1, 0),
            (2, 4),
            (1, 0),
            (2, 5),
        ]
        assert all(isinstance(f.payload, memoryview) for f in frames)
        assert bytes(frames[0].payload) == b"alpha"
        assert bytes(frames[1].payload) == b"legacy"
        assert bytes(frames[4].payload) == b"omega" * 1000

    def test_payload_at_exactly_the_frame_cap(self):
        payload = bytes(MAX_FRAME_BYTES)
        assembler = FrameAssembler(views=True)
        frames = assembler.feed(encode_frame_segments_v2(9, [payload])[0])
        assert frames == []
        # Feed the payload in two halves to exercise mid-payload resume.
        half = MAX_FRAME_BYTES // 2
        assert assembler.feed(payload[:half]) == []
        (frame,) = assembler.feed(payload[half:])
        assert frame.correlation_id == 9
        assert len(frame.payload) == MAX_FRAME_BYTES

    def test_payload_one_past_the_cap_rejected_before_allocation(self):
        import struct

        header = struct.pack(">2sBQI", b"T2", 2, 1, MAX_FRAME_BYTES + 1)
        with pytest.raises(ProtocolError):
            FrameAssembler(views=True).feed(header)

    def test_retained_view_survives_feed_buffer_reuse(self):
        """Mutating the fed buffer after feed() must not corrupt emitted frames."""
        scratch = bytearray(1 << 12)
        wire = encode_frame_v2(1, b"precious-payload")
        scratch[: len(wire)] = wire
        assembler = FrameAssembler(views=True)
        (frame,) = assembler.feed(memoryview(scratch)[: len(wire)])
        # The caller reuses its receive buffer for the next read.
        scratch[:] = b"\xff" * len(scratch)
        assert bytes(frame.payload) == b"precious-payload"
        assert frame.payload.readonly

    def test_view_attachments_decode_and_retain(self):
        request = Request("kv_put", {}, [b"key-1", b"value-1"])
        wire = encode_frame_v2(2, request.encode())
        (frame,) = FrameAssembler(views=True).feed(wire)
        decoded = Request.decode(frame.payload)
        assert all(isinstance(blob, memoryview) for blob in decoded.attachments)
        assert retain(decoded.attachments[0]) == b"key-1"
        assert retain(decoded.attachments[1]) == b"value-1"


class TestHostileHeaders:
    def test_forged_giant_header_len_peeks_as_none(self):
        # varint says 3 GiB of JSON header; actual payload is tiny.
        forged = encode_varint(3 << 30) + b"{}"
        assert peek_operation(forged) is None

    def test_forged_giant_header_len_decode_raises_typed(self):
        forged = encode_varint(3 << 30) + b"{}"
        with pytest.raises(ProtocolError):
            Request.decode(forged)

    def test_negative_attachment_length_rejected(self):
        segments = encode_message_segments({"op": "ping"}, [])
        header = b"".join(segments)
        # Splice a negative length into the JSON header.
        tampered = header.replace(b'"attachment_lengths": []', b'"attachment_lengths": [-1]')
        assert tampered != header
        with pytest.raises(ProtocolError):
            _decode_message(tampered)

    def test_non_list_and_bool_attachment_lengths_rejected(self):
        base = b"".join(encode_message_segments({"op": "ping"}, []))
        not_list = base.replace(b'"attachment_lengths": []', b'"attachment_lengths": 4')
        with pytest.raises(ProtocolError):
            _decode_message(not_list)
        booled = base.replace(b'"attachment_lengths": []', b'"attachment_lengths": [true]')
        with pytest.raises(ProtocolError):
            _decode_message(booled)

    def test_truncated_attachment_rejected(self):
        wire = b"".join(encode_message_segments({"op": "ping"}, [b"full-attachment"]))
        with pytest.raises(ProtocolError):
            _decode_message(wire[:-3])

    def test_compressed_message_declaring_wrong_length_rejected(self):
        wire = compress_message(b"".join(encode_message_segments({"op": "ping"}, [])))
        # Corrupt the declared raw length (second varint).
        tampered = wire[:1] + encode_varint(5) + wire[2:]
        with pytest.raises(ProtocolError):
            _decode_message(tampered)

    def test_compressed_message_above_frame_cap_rejected(self):
        bomb = b"\x00" + encode_varint(MAX_FRAME_BYTES + 1) + b"x"
        with pytest.raises(ProtocolError):
            _decode_message(bomb)
        assert peek_operation(bomb) is None


class TestCompressionCodec:
    def test_round_trip_preserves_header_and_attachments(self):
        original = Request("put_grants", {"uuid": "s"}, [b"tok" * 2000, b"x"])
        wire = compress_message(original.encode())
        assert len(wire) < len(original.encode())
        decoded = Request.decode(wire)
        assert decoded.operation == "put_grants"
        assert [retain(blob) for blob in decoded.attachments] == [b"tok" * 2000, b"x"]

    def test_peek_operation_sees_through_compression(self):
        wire = compress_message(Request("stat_range", {"uuid": "s"}).encode())
        assert peek_operation(wire) == "stat_range"

    def test_maybe_compress_respects_threshold(self):
        small = encode_message_segments({"op": "ping"}, [])
        passed, compressed = maybe_compress_segments(small, threshold=4096)
        assert not compressed and b"".join(passed) == b"".join(small)
        big = encode_message_segments({"op": "ping"}, [b"z" * 10_000])
        squeezed, compressed = maybe_compress_segments(big, threshold=4096)
        assert compressed and len(squeezed) == 1
        header, attachments = _decode_message(squeezed[0])
        assert retain(attachments[0]) == b"z" * 10_000


class TestCompressionNegotiation:
    def _grant_burst(self, remote: RemoteServerClient) -> None:
        """One compressible request (a large, redundant grant burst)."""
        owner = TimeCrypt(server=remote, owner_id="alice")
        uuid = owner.create_stream(metric="hr")
        remote.put_grants([(uuid, f"worker-{i}", b"sealed" * 300) for i in range(8)])
        fetched = remote.fetch_grants(uuid, "worker-3")
        assert fetched == [b"sealed" * 300]

    def test_both_ends_on_compresses_large_frames(self):
        engine = ServerEngine()
        with TimeCryptTCPServer(engine, wire_compression=True) as server:
            host, port = server.address
            with RemoteServerClient(host, port, compression=True) as remote:
                assert remote._compress is True
                self._grant_burst(remote)
                assert remote.wire_stats.frames_compressed >= 1
                # Small frames (ping) stay uncompressed.
                before = remote.wire_stats.frames_compressed
                assert remote.ping()
                assert remote.wire_stats.frames_compressed == before

    def test_server_side_compression_counter_visible_in_stats(self, small_config):
        engine = ServerEngine()
        with TimeCryptTCPServer(engine, wire_compression=True) as server:
            host, port = server.address
            with RemoteServerClient(host, port, compression=True) as remote:
                owner = TimeCrypt(server=remote, owner_id="alice")
                uuid = owner.create_stream(metric="hr", config=small_config)
                remote.put_grants(
                    [(uuid, f"w-{i}", b"sealed" * 1200) for i in range(16)]
                )
                # A large, highly-redundant response: every worker's grants.
                for index in range(16):
                    assert remote.fetch_grants(uuid, f"w-{index}")
                stats = server.scheduler_stats()
                assert stats["frames_compressed"] >= 1

    def test_client_on_server_off_negotiates_uncompressed(self):
        engine = ServerEngine()
        with TimeCryptTCPServer(engine, wire_compression=False) as server:
            host, port = server.address
            with RemoteServerClient(host, port, compression=True) as remote:
                assert remote._compress is False
                self._grant_burst(remote)
                assert remote.wire_stats.frames_compressed == 0

    def test_client_off_server_on_negotiates_uncompressed(self):
        engine = ServerEngine()
        with TimeCryptTCPServer(engine, wire_compression=True) as server:
            host, port = server.address
            with RemoteServerClient(host, port, compression=False) as remote:
                assert remote._compress is False
                self._grant_burst(remote)
                assert remote.wire_stats.frames_compressed == 0
                assert server.scheduler_stats()["frames_compressed"] == 0

    def test_v1_peer_never_compresses(self):
        engine = ServerEngine()
        with TimeCryptTCPServer(engine, wire_compression=True) as server:
            host, port = server.address
            with RemoteServerClient(
                host, port, protocol_version=1, compression=True
            ) as remote:
                assert remote.protocol_version == 1
                assert remote._compress is False
                self._grant_burst(remote)
                assert remote.wire_stats.frames_compressed == 0
                assert server.scheduler_stats()["frames_compressed"] == 0


class TestEndToEndRetention:
    def test_stored_kv_values_survive_later_traffic(self):
        """The retain audit, end to end: values stored from view attachments
        must not alias frame buffers that later requests overwrite."""
        store = MemoryStore()
        with StorageNodeServer(store, zero_copy=True) as node:
            host, port = node.address
            remote = RemoteKeyValueStore(host, port)
            try:
                originals = {
                    f"key-{index:03d}".encode(): bytes([index % 251]) * 512
                    for index in range(32)
                }
                remote.multi_put(list(originals.items()))
                # Hammer the same connection (and thus the same receive
                # buffers) with different payloads.
                remote.multi_put(
                    [(f"noise-{i:03d}".encode(), b"\xee" * 600) for i in range(64)]
                )
                found = remote.multi_get(list(originals))
                assert found == originals
                for key, value in remote.scan_prefix(b"key-"):
                    assert isinstance(key, bytes) and isinstance(value, bytes)
                    assert found[key] == value
            finally:
                remote.close()

    def test_zero_copy_and_legacy_clients_get_identical_bytes(self, small_config):
        """Byte-identity acceptance: both client modes read the same stream."""
        engine = ServerEngine()
        with TimeCryptTCPServer(engine, zero_copy=True) as server:
            host, port = server.address
            with RemoteServerClient(host, port, zero_copy=True) as fast:
                owner = TimeCrypt(server=fast, owner_id="alice")
                uuid = owner.create_stream(metric="hr", config=small_config)
                owner.insert_records(uuid, [(t, float(t % 13)) for t in range(0, 8_000, 100)])
                owner.flush(uuid)
                from repro.util.timeutil import TimeRange

                fast_chunks = fast.get_range(uuid, TimeRange(0, 8_000))
            with RemoteServerClient(host, port, zero_copy=False) as legacy:
                legacy_chunks = legacy.get_range(uuid, TimeRange(0, 8_000))
        assert len(fast_chunks) == len(legacy_chunks) == 8
        for fast_chunk, legacy_chunk in zip(fast_chunks, legacy_chunks):
            assert fast_chunk.payload == legacy_chunk.payload
            assert fast_chunk.stream_uuid == legacy_chunk.stream_uuid
